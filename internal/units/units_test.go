package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRateConstructors(t *testing.T) {
	if Mbps(25) != 25*MbitPerSec {
		t.Errorf("Mbps(25) = %d, want %d", Mbps(25), 25*MbitPerSec)
	}
	if Kbps(500) != 500*KbitPerSec {
		t.Errorf("Kbps(500) = %d, want %d", Kbps(500), 500*KbitPerSec)
	}
	if Gbps(1) != GbitPerSec {
		t.Errorf("Gbps(1) = %d, want %d", Gbps(1), GbitPerSec)
	}
}

func TestRateMbit(t *testing.T) {
	if got := Mbps(25).Mbit(); got != 25 {
		t.Errorf("Mbit() = %v, want 25", got)
	}
}

func TestTimeToTransmit(t *testing.T) {
	// 1500 bytes at 12 Mb/s = 12000 bits / 12e6 b/s = 1 ms.
	got := Mbps(12).TimeToTransmit(1500)
	if got != time.Millisecond {
		t.Errorf("TimeToTransmit = %v, want 1ms", got)
	}
}

func TestTimeToTransmitZeroRate(t *testing.T) {
	if got := Rate(0).TimeToTransmit(1500); got != 0 {
		t.Errorf("zero rate should transmit instantly, got %v", got)
	}
}

func TestBytesIn(t *testing.T) {
	// 8 Mb/s for 1 s = 1 MB.
	if got := Mbps(8).BytesIn(time.Second); got != 1_000_000 {
		t.Errorf("BytesIn = %v, want 1000000", got)
	}
	if got := Mbps(8).BytesIn(-time.Second); got != 0 {
		t.Errorf("negative duration should give 0, got %v", got)
	}
}

func TestBDP(t *testing.T) {
	// The paper's normal condition: 25 Mb/s with 16.5 ms RTT.
	// BDP = 25e6 * 0.0165 / 8 = 51562.5 bytes.
	got := BDP(Mbps(25), 16500*time.Microsecond)
	want := ByteSize(51562)
	if got != want {
		t.Errorf("BDP = %d, want %d", got, want)
	}
}

func TestRateFromBytes(t *testing.T) {
	// 1 MB over 1 s = 8 Mb/s.
	got := RateFromBytes(1_000_000, time.Second)
	if got != Mbps(8) {
		t.Errorf("RateFromBytes = %v, want 8 Mb/s", got)
	}
	if got := RateFromBytes(100, 0); got != 0 {
		t.Errorf("zero duration should give 0, got %v", got)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{Gbps(1), "1.0 Gb/s"},
		{Mbps(25), "25.0 Mb/s"},
		{Kbps(500), "500.0 Kb/s"},
		{Rate(12), "12 b/s"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		b    ByteSize
		want string
	}{
		{2 * MB, "2.0 MB"},
		{510 * KB, "510.0 KB"},
		{12, "12 B"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestScale(t *testing.T) {
	if got := Mbps(10).Scale(0.5); got != Mbps(5) {
		t.Errorf("Scale = %v, want 5 Mb/s", got)
	}
}

// Property: transmitting BytesIn(d) bytes at rate r takes approximately d.
func TestTransmitRoundTrip(t *testing.T) {
	f := func(rateMbit uint16, ms uint16) bool {
		if rateMbit == 0 || ms == 0 {
			return true
		}
		r := Mbps(float64(rateMbit))
		d := time.Duration(ms) * time.Millisecond
		n := r.BytesIn(d)
		back := r.TimeToTransmit(n)
		// Within one byte's transmission time of d.
		tol := r.TimeToTransmit(1) + time.Nanosecond
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BDP is monotone in both rate and RTT.
func TestBDPMonotone(t *testing.T) {
	f := func(a, b uint8, ms uint8) bool {
		if ms == 0 {
			return true
		}
		lo, hi := Rate(a)*MbitPerSec, Rate(b)*MbitPerSec
		if lo > hi {
			lo, hi = hi, lo
		}
		rtt := time.Duration(ms) * time.Millisecond
		return BDP(lo, rtt) <= BDP(hi, rtt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBits(t *testing.T) {
	if got := ByteSize(10).Bits(); got != 80 {
		t.Errorf("Bits = %d, want 80", got)
	}
}

func TestScaleRounding(t *testing.T) {
	got := Rate(3).Scale(0.5)
	if math.Abs(float64(got)-1.5) > 0.5 {
		t.Errorf("Scale(3, .5) = %v, want 2 (rounded)", got)
	}
}
