// Package iperf implements the bulk-download traffic generator from the
// paper's testbed: a TCP connection (Cubic or BBR) that transfers as fast
// as congestion control allows between a start and stop time, emulating
// `iperf` run for the middle three minutes of each trace.
//
// The flow's entire data path is allocation-free in steady state: segments
// come from the tcp.Sender's freelist and packets from the host's
// packet.Pool, so a bulk flow adds no GC pressure beyond its (amortised)
// goodput-bin growth.
package iperf

import (
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Flow is one bulk-download TCP flow: the sender lives on the server host,
// the receiver (the "iperf client" doing the download) on the client host.
// The endpoints are embedded by value so a population of flows can live in
// one bulk array; Sender and Receiver point at the embedded state.
type Flow struct {
	Sender   *tcp.Sender
	Receiver *tcp.Receiver
	sender   tcp.Sender
	receiver tcp.Receiver
	eng      *sim.Engine

	startAt sim.Time
	started bool

	// rx[i] accumulates bytes received in half-second bin i, for the
	// competing-flow side of the paper's bitrate comparisons.
	binDur sim.Time
	rxBins []int64
}

// New creates a bulk flow with the given congestion control algorithm
// ("cubic" or "bbr"), sending from serverHost to clientHost. binDur sets
// the goodput time-series resolution.
func New(serverHost, clientHost *netem.Host, flow packet.FlowID, alg string, binDur sim.Time) *Flow {
	f := &Flow{}
	f.Init(serverHost, clientHost, flow, alg, binDur)
	return f
}

// Init readies a zero-valued Flow in place — the bulk-array twin of New.
// A Flow must not be copied after Init (the embedded endpoints hold
// intrusive timer state).
func (f *Flow) Init(serverHost, clientHost *netem.Host, flow packet.FlowID, alg string, binDur sim.Time) {
	f.InitWithCC(serverHost, clientHost, flow, tcp.New(alg), binDur)
}

// InitWithCC is Init with a caller-supplied congestion controller, for
// populations that construct controllers in bulk (tcp.NewBulk).
func (f *Flow) InitWithCC(serverHost, clientHost *netem.Host, flow packet.FlowID, cc tcp.CongestionControl, binDur sim.Time) {
	f.eng = serverHost.Engine()
	f.binDur = binDur
	f.sender.Init(serverHost, flow, clientHost.Addr, cc)
	f.receiver.Init(clientHost, flow, serverHost.Addr)
	f.Sender = &f.sender
	f.Receiver = &f.receiver
	f.receiver.SetSink(f)
}

// Deliver implements tcp.DeliverSink, accumulating goodput bins.
func (f *Flow) Deliver(n int64) {
	if f.binDur <= 0 {
		return
	}
	bin := int(f.eng.Now() / f.binDur)
	for len(f.rxBins) <= bin {
		f.rxBins = append(f.rxBins, 0)
	}
	f.rxBins[bin] += n
}

// ShareSegPool attaches a shared scoreboard freelist to the flow's sender
// and a shared ACK-option pool to its receiver; see tcp.Sender.SetSegPool.
func (f *Flow) ShareSegPool(segs *tcp.SegPool, acks *tcp.AckPool) {
	f.sender.SetSegPool(segs)
	f.receiver.SetAckPool(acks)
}

// SetBinStore hands the flow a preallocated (empty) goodput-bin backing
// array, letting populations carve per-slot bins from one bulk allocation.
func (f *Flow) SetBinStore(buf []int64) {
	f.rxBins = buf[:0]
}

// PresizeBins grows the goodput-bin store to cover times up to t, so the
// per-delivery hot path never reallocates during the run. Callers that
// know the run horizon (e.g. flow populations with hundreds of slots)
// use it to move bin growth out of steady state entirely.
func (f *Flow) PresizeBins(t sim.Time) {
	if f.binDur <= 0 {
		return
	}
	bins := int(t/f.binDur) + 1
	if cap(f.rxBins) < bins {
		nb := make([]int64, len(f.rxBins), bins)
		copy(nb, f.rxBins)
		f.rxBins = nb
	}
}

// Restart rearms the flow as a fresh connection with the given congestion
// control algorithm and begins sending immediately. It is the slot-reuse
// path for flow populations: the tcp endpoints are reset in place (sender
// first, so the receiver's new frontier matches the sender's continued
// sequence space) instead of being reallocated per arrival, and the
// congestion controller is re-initialised in place when the algorithm is
// unchanged — a repeat arrival allocates nothing.
func (f *Flow) Restart(alg string) {
	if alg == f.Sender.CC().Name() {
		f.Sender.Reset(nil)
	} else {
		f.Sender.Reset(tcp.New(alg))
	}
	f.Receiver.ResetAt(f.Sender.SndNxt())
	f.startAt = f.eng.Now()
	f.started = true
	f.Sender.Start()
}

// Stop halts transmission; in-flight data drains and remains subject to
// retransmission until acknowledged.
func (f *Flow) Stop() { f.Sender.StopSending() }

// ScheduleRun arms the flow to start at `start` and stop at `stop`
// (simulation times).
func (f *Flow) ScheduleRun(start, stop sim.Time) {
	f.startAt = start
	f.eng.ScheduleAt(start, func() {
		f.started = true
		f.Sender.Start()
	})
	f.eng.ScheduleAt(stop, func() {
		f.Sender.StopSending()
	})
}

// GoodputBins returns per-bin goodput in bits/s.
func (f *Flow) GoodputBins() []float64 {
	out := make([]float64, len(f.rxBins))
	sec := f.binDur.Duration().Seconds()
	for i, b := range f.rxBins {
		out[i] = float64(b) * 8 / sec
	}
	return out
}

// GoodputBetween returns the average goodput over [from, to) from the bin
// series.
func (f *Flow) GoodputBetween(from, to sim.Time) units.Rate {
	if f.binDur <= 0 || to <= from {
		return 0
	}
	var total int64
	for i, b := range f.rxBins {
		t0 := sim.Time(i) * f.binDur
		if t0 >= from && t0 < to {
			total += b
		}
	}
	return units.RateFromBytes(units.ByteSize(total), to.Sub(from))
}
