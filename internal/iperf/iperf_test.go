package iperf

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func testbed() (*sim.Engine, *netem.Host, *netem.Host) {
	eng := sim.NewEngine(1)
	var ids uint64
	var srv, cli *netem.Host
	q := netem.NewDropTail(2 * units.BDP(units.Mbps(20), 20*time.Millisecond))
	fwd := netem.NewDelay(eng, 10*time.Millisecond, packet.HandlerFunc(func(p *packet.Packet) { cli.Handle(p) }))
	sh := netem.NewShaper(eng, units.Mbps(20), 2*packet.MTU, q, fwd)
	rev := netem.NewDelay(eng, 10*time.Millisecond, packet.HandlerFunc(func(p *packet.Packet) { srv.Handle(p) }))
	srv = netem.NewHost(eng, 1, sh, &ids)
	cli = netem.NewHost(eng, 2, rev, &ids)
	return eng, srv, cli
}

func TestScheduledRunWindow(t *testing.T) {
	eng, srv, cli := testbed()
	f := New(srv, cli, 1, "cubic", sim.At(500*time.Millisecond))
	f.ScheduleRun(sim.At(5*time.Second), sim.At(15*time.Second))
	eng.Run(sim.At(25 * time.Second))

	before := f.GoodputBetween(0, sim.At(4*time.Second))
	during := f.GoodputBetween(sim.At(7*time.Second), sim.At(15*time.Second))
	after := f.GoodputBetween(sim.At(18*time.Second), sim.At(25*time.Second))
	if before != 0 {
		t.Errorf("goodput before start: %v", before)
	}
	if during.Mbit() < 15 {
		t.Errorf("goodput during run: %.1f Mb/s on a 20 Mb/s link", during.Mbit())
	}
	if after.Mbit() > 0.5 {
		t.Errorf("goodput after stop: %v", after)
	}
}

func TestGoodputBins(t *testing.T) {
	eng, srv, cli := testbed()
	f := New(srv, cli, 1, "bbr", sim.At(time.Second))
	f.ScheduleRun(sim.At(0), sim.At(10*time.Second))
	eng.Run(sim.At(12 * time.Second))
	bins := f.GoodputBins()
	if len(bins) < 9 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Steady-state bins near 20 Mb/s.
	mid := bins[5] / 1e6
	if mid < 14 || mid > 21 {
		t.Errorf("mid-run bin = %.1f Mb/s", mid)
	}
}

func TestGoodputBetweenEdges(t *testing.T) {
	eng, srv, cli := testbed()
	f := New(srv, cli, 1, "cubic", 0) // binning disabled
	f.ScheduleRun(sim.At(0), sim.At(2*time.Second))
	eng.Run(sim.At(3 * time.Second))
	if got := f.GoodputBetween(0, sim.At(time.Second)); got != 0 {
		t.Errorf("disabled binning returned %v", got)
	}
}
