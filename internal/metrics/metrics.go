// Package metrics implements the paper's derived measures: bitrate-series
// summaries, response and recovery times (§4.2), the combined adaptiveness
// score, the normalised fairness ratio, Jain's fairness index, and the
// harm-based comparison the paper lists as future work (Ware et al.).
package metrics

import (
	"time"

	"repro/internal/stats"
)

// Series is a fixed-bin time series (e.g. bitrate in Mb/s per 0.5 s bin).
type Series struct {
	Bin time.Duration
	V   []float64
}

// idx converts a time offset to a bin index, clamped to the series. The
// clamping is silent by design — use Window when "no data in range" must be
// distinguishable from "data happened to be zero".
func (s Series) idx(t time.Duration) int {
	i := int(t / s.Bin)
	if i < 0 {
		i = 0
	}
	if i > len(s.V) {
		i = len(s.V)
	}
	return i
}

// Window returns the bins covering [from, to) and whether that window
// actually holds data. ok is false when the series is empty, the bin width
// is unset, or the clamped range is empty (to <= from, or from beyond the
// recorded data). Callers for whom an empty window means "measurement
// impossible" rather than "measured zero" — response/recovery detection in
// particular — must branch on ok instead of trusting a zero mean.
//
// The returned slice is a zero-copy view over the series' backing array
// (0 allocs/op — see BenchmarkSeriesWindow); callers must not mutate it.
func (s Series) Window(from, to time.Duration) (v []float64, ok bool) {
	if s.Bin <= 0 || len(s.V) == 0 {
		return nil, false
	}
	lo, hi := s.idx(from), s.idx(to)
	if hi <= lo {
		return nil, false
	}
	return s.V[lo:hi], true
}

// MeanBetweenOK returns the mean over [from, to) and whether the window held
// any data.
func (s Series) MeanBetweenOK(from, to time.Duration) (float64, bool) {
	w, ok := s.Window(from, to)
	if !ok {
		return 0, false
	}
	return stats.Mean(w), true
}

// MeanBetween returns the mean over [from, to). Zero-value contract: an
// empty window yields 0, indistinguishable from a true zero mean; use
// MeanBetweenOK where the difference matters.
func (s Series) MeanBetween(from, to time.Duration) float64 {
	m, _ := s.MeanBetweenOK(from, to)
	return m
}

// StdBetweenOK returns the sample standard deviation over [from, to) and
// whether the window held any data.
func (s Series) StdBetweenOK(from, to time.Duration) (float64, bool) {
	w, ok := s.Window(from, to)
	if !ok {
		return 0, false
	}
	return stats.StdDev(w), true
}

// StdBetween returns the sample standard deviation over [from, to), with the
// same zero-value contract as MeanBetween.
func (s Series) StdBetween(from, to time.Duration) float64 {
	sd, _ := s.StdBetweenOK(from, to)
	return sd
}

// Smoothed returns a centred moving average with the given half-window (in
// bins), used to keep response detection from triggering on single-bin
// noise.
func (s Series) Smoothed(half int) Series {
	if half <= 0 {
		return s
	}
	out := make([]float64, len(s.V))
	for i := range s.V {
		lo, hi := i-half, i+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(s.V) {
			hi = len(s.V)
		}
		out[i] = stats.Mean(s.V[lo:hi])
	}
	return Series{Bin: s.Bin, V: out}
}

// SettleTime returns how long after event the (smoothed) series first comes
// within one tolerance band of the target level, scanning up to deadline.
// The second return reports whether settling happened; if not, the full
// scan window is returned — the paper's "never responds/recovers" case.
func SettleTime(s Series, event, deadline time.Duration, target, tolerance float64) (time.Duration, bool) {
	return settleSmoothed(s.Smoothed(2), event, deadline, target, tolerance)
}

// settleSmoothed is SettleTime on an already-smoothed series, so callers
// scanning the same series for several events (response and recovery)
// smooth it once instead of once per scan.
func settleSmoothed(sm Series, event, deadline time.Duration, target, tolerance float64) (time.Duration, bool) {
	lo, hi := sm.idx(event), sm.idx(deadline)
	for i := lo; i < hi; i++ {
		diff := sm.V[i] - target
		if diff < 0 {
			diff = -diff
		}
		if diff <= tolerance {
			return time.Duration(i)*sm.Bin - event, true
		}
	}
	return deadline - event, false
}

// Timeline carries the experiment's measurement windows, all offsets from
// trace start. Defaults mirror the paper: competing flow from 185 s to
// 370 s in a 540 s trace.
type Timeline struct {
	FlowStart time.Duration // competing flow arrives
	FlowStop  time.Duration // competing flow departs
	TraceEnd  time.Duration
}

// PaperTimeline is the timeline used in the paper's experiments.
var PaperTimeline = Timeline{
	FlowStart: 185 * time.Second,
	FlowStop:  370 * time.Second,
	TraceEnd:  540 * time.Second,
}

// Scale returns the timeline compressed by factor (for fast test runs).
func (t Timeline) Scale(f float64) Timeline {
	return Timeline{
		FlowStart: time.Duration(float64(t.FlowStart) * f),
		FlowStop:  time.Duration(float64(t.FlowStop) * f),
		TraceEnd:  time.Duration(float64(t.TraceEnd) * f),
	}
}

// Windows derived from the timeline, matching §4.2 of the paper.
func (t Timeline) OriginalWindow() (from, to time.Duration) {
	// Mean original bitrate: the minute before the flow arrives.
	return t.FlowStart - t.FlowStart/3, t.FlowStart
}

// AdjustedWindow is the stabilised window before the flow departs.
func (t Timeline) AdjustedWindow() (from, to time.Duration) {
	span := (t.FlowStop - t.FlowStart) / 3
	return t.FlowStop - span, t.FlowStop
}

// FairnessWindow is the contention window excluding the initial response
// transient (220 s to 370 s in the paper).
func (t Timeline) FairnessWindow() (from, to time.Duration) {
	transient := (t.FlowStop - t.FlowStart) / 5
	return t.FlowStart + transient, t.FlowStop
}

// ResponseRecovery holds the per-run adaptation measurements.
type ResponseRecovery struct {
	Response    time.Duration
	Responded   bool
	Recovery    time.Duration
	Recovered   bool
	OriginalMbs float64 // mean original bitrate
	AdjustedMbs float64 // mean adjusted (contended) bitrate
}

// MeasureResponseRecovery applies the paper's §4.2 procedure to a game
// bitrate series: response is time from flow arrival until the bitrate is
// within one standard deviation of the adjusted level; recovery is time
// from flow departure until within one standard deviation of the original
// level.
func MeasureResponseRecovery(s Series, tl Timeline) ResponseRecovery {
	of, ot := tl.OriginalWindow()
	af, at := tl.AdjustedWindow()
	orig, origOK := s.MeanBetweenOK(of, ot)
	origStd := s.StdBetween(of, ot)
	adj, adjOK := s.MeanBetweenOK(af, at)
	adjStd := s.StdBetween(af, at)

	// Floor the tolerance bands at 5% of the respective level so a
	// near-constant window does not make settling undetectable.
	if min := 0.05 * adj; adjStd < min {
		adjStd = min
	}
	if min := 0.05 * orig; origStd < min {
		origStd = min
	}

	// A reference window with no data means the target level (and a zero
	// tolerance band around it) would be fabricated from nothing, and a
	// series idling at zero would "settle" instantly. Report the full scan
	// window and not-settled instead — the honest "never responds" answer.
	resp, responded := tl.FlowStop-tl.FlowStart, false
	rec, recovered := tl.TraceEnd-tl.FlowStop, false
	if adjOK || origOK {
		sm := s.Smoothed(2) // shared by both scans; Smoothed is the costly part
		if adjOK {
			resp, responded = settleSmoothed(sm, tl.FlowStart, tl.FlowStop, adj, adjStd)
		}
		if origOK {
			rec, recovered = settleSmoothed(sm, tl.FlowStop, tl.TraceEnd, orig, origStd)
		}
	}
	return ResponseRecovery{
		Response:    resp,
		Responded:   responded,
		Recovery:    rec,
		Recovered:   recovered,
		OriginalMbs: orig,
		AdjustedMbs: adj,
	}
}

// Adaptiveness combines response and recovery per the paper:
// A = ((1 - C/Cmax) + (1 - E/Emax)) / 2, in [0, 1], higher is better.
func Adaptiveness(r ResponseRecovery, cmax, emax time.Duration) float64 {
	a := 0.0
	if cmax > 0 {
		a += 0.5 * (1 - float64(r.Response)/float64(cmax))
	} else {
		a += 0.5
	}
	if emax > 0 {
		a += 0.5 * (1 - float64(r.Recovery)/float64(emax))
	} else {
		a += 0.5
	}
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	return a
}

// FairnessRatio is the paper's normalised bitrate difference:
// (game − tcp) / capacity, in [-1, 1]; 0 is an equal split.
func FairnessRatio(gameMbs, tcpMbs, capacityMbs float64) float64 {
	if capacityMbs <= 0 {
		return 0
	}
	r := (gameMbs - tcpMbs) / capacityMbs
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r
}

// JainIndex returns Jain's fairness index over per-flow throughputs:
// (Σx)² / (n·Σx²), in (0, 1], 1 = perfectly equal.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Harm implements the Ware et al. harm measure the paper suggests as an
// alternative to throughput fairness: the fractional degradation of a
// flow's solo performance when competed against, for a metric where higher
// is better (throughput). Returns a value in [0, 1] (clamped).
func Harm(solo, competed float64) float64 {
	if solo <= 0 {
		return 0
	}
	h := (solo - competed) / solo
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h
}

// HarmInverse is Harm for metrics where lower is better (delay, loss).
func HarmInverse(solo, competed float64) float64 {
	if competed <= 0 {
		return 0
	}
	h := (competed - solo) / competed
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h
}
