package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// mkSeries builds a series with value fn(t) at each half-second bin.
func mkSeries(dur time.Duration, fn func(t time.Duration) float64) Series {
	bin := 500 * time.Millisecond
	n := int(dur / bin)
	v := make([]float64, n)
	for i := range v {
		v[i] = fn(time.Duration(i) * bin)
	}
	return Series{Bin: bin, V: v}
}

// stepSeries emulates a game flow: 25 Mb/s, dropping to 12 at flowStart
// with a linear response taking respDur, recovering over recDur after
// flowStop.
func stepSeries(tl Timeline, respDur, recDur time.Duration) Series {
	return mkSeries(tl.TraceEnd, func(t time.Duration) float64 {
		const hi, lo = 25.0, 12.0
		switch {
		case t < tl.FlowStart:
			return hi
		case t < tl.FlowStart+respDur:
			f := float64(t-tl.FlowStart) / float64(respDur)
			return hi - (hi-lo)*f
		case t < tl.FlowStop:
			return lo
		case t < tl.FlowStop+recDur:
			f := float64(t-tl.FlowStop) / float64(recDur)
			return lo + (hi-lo)*f
		default:
			return hi
		}
	})
}

func TestSeriesMeanStd(t *testing.T) {
	s := mkSeries(10*time.Second, func(t time.Duration) float64 {
		if t < 5*time.Second {
			return 10
		}
		return 20
	})
	if got := s.MeanBetween(0, 5*time.Second); got != 10 {
		t.Errorf("mean first half = %v", got)
	}
	if got := s.MeanBetween(5*time.Second, 10*time.Second); got != 20 {
		t.Errorf("mean second half = %v", got)
	}
	if got := s.StdBetween(0, 5*time.Second); got != 0 {
		t.Errorf("std of constant = %v", got)
	}
	if got := s.MeanBetween(0, 10*time.Second); got != 15 {
		t.Errorf("overall mean = %v", got)
	}
}

func TestSeriesClamping(t *testing.T) {
	s := mkSeries(time.Second, func(time.Duration) float64 { return 1 })
	if got := s.MeanBetween(-time.Second, 100*time.Second); got != 1 {
		t.Errorf("clamped mean = %v", got)
	}
	if got := s.MeanBetween(5*time.Second, 3*time.Second); got != 0 {
		t.Errorf("inverted window mean = %v", got)
	}
}

func TestSmoothedPreservesConstant(t *testing.T) {
	s := mkSeries(5*time.Second, func(time.Duration) float64 { return 7 })
	sm := s.Smoothed(3)
	for i, v := range sm.V {
		if v != 7 {
			t.Fatalf("bin %d = %v after smoothing a constant", i, v)
		}
	}
}

func TestMeasureResponseRecovery(t *testing.T) {
	tl := PaperTimeline
	s := stepSeries(tl, 10*time.Second, 30*time.Second)
	rr := MeasureResponseRecovery(s, tl)
	if !rr.Responded || !rr.Recovered {
		t.Fatalf("settling not detected: %+v", rr)
	}
	// Linear 10 s ramp into a band of ±5% of 12 Mb/s: detection happens
	// near the end of the ramp.
	if rr.Response < 7*time.Second || rr.Response > 12*time.Second {
		t.Errorf("response = %v, want ~9-10 s", rr.Response)
	}
	if rr.Recovery < 24*time.Second || rr.Recovery > 33*time.Second {
		t.Errorf("recovery = %v, want ~28-30 s", rr.Recovery)
	}
	if math.Abs(rr.OriginalMbs-25) > 0.5 {
		t.Errorf("original = %v", rr.OriginalMbs)
	}
	if math.Abs(rr.AdjustedMbs-12) > 0.5 {
		t.Errorf("adjusted = %v", rr.AdjustedMbs)
	}
}

func TestNeverRecovers(t *testing.T) {
	tl := PaperTimeline
	// Flow never comes back up after departure.
	s := mkSeries(tl.TraceEnd, func(t time.Duration) float64 {
		if t < tl.FlowStart {
			return 25
		}
		return 3
	})
	rr := MeasureResponseRecovery(s, tl)
	if rr.Recovered {
		t.Error("recovery reported for a flow that never recovered")
	}
	if rr.Recovery != tl.TraceEnd-tl.FlowStop {
		t.Errorf("unrecovered time = %v, want the full window %v",
			rr.Recovery, tl.TraceEnd-tl.FlowStop)
	}
}

func TestAdaptivenessBounds(t *testing.T) {
	rr := ResponseRecovery{Response: 10 * time.Second, Recovery: 20 * time.Second}
	a := Adaptiveness(rr, 10*time.Second, 20*time.Second)
	if a != 0 {
		t.Errorf("worst-case adaptiveness = %v, want 0", a)
	}
	fast := ResponseRecovery{Response: 0, Recovery: 0}
	if got := Adaptiveness(fast, 10*time.Second, 20*time.Second); got != 1 {
		t.Errorf("best-case adaptiveness = %v, want 1", got)
	}
	half := ResponseRecovery{Response: 5 * time.Second, Recovery: 10 * time.Second}
	if got := Adaptiveness(half, 10*time.Second, 20*time.Second); got != 0.5 {
		t.Errorf("mid adaptiveness = %v, want 0.5", got)
	}
}

// Property: adaptiveness is always within [0, 1].
func TestAdaptivenessRange(t *testing.T) {
	f := func(c, e, cm, em uint16) bool {
		rr := ResponseRecovery{
			Response: time.Duration(c) * time.Second,
			Recovery: time.Duration(e) * time.Second,
		}
		a := Adaptiveness(rr, time.Duration(cm)*time.Second, time.Duration(em)*time.Second)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFairnessRatio(t *testing.T) {
	if got := FairnessRatio(12.5, 12.5, 25); got != 0 {
		t.Errorf("equal split ratio = %v", got)
	}
	if got := FairnessRatio(20, 5, 25); got != 0.6 {
		t.Errorf("game-dominant ratio = %v, want 0.6", got)
	}
	if got := FairnessRatio(5, 20, 25); got != -0.6 {
		t.Errorf("tcp-dominant ratio = %v, want -0.6", got)
	}
	if got := FairnessRatio(99, 0, 25); got != 1 {
		t.Error("ratio not clamped to 1")
	}
}

// Property: fairness ratio is antisymmetric and bounded.
func TestFairnessRatioProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		g, c := float64(a), float64(b)
		r1 := FairnessRatio(g, c, 25)
		r2 := FairnessRatio(c, g, 25)
		return r1 >= -1 && r1 <= 1 && math.Abs(r1+r2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{10, 10, 10}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal flows JFI = %v", got)
	}
	// One flow hogging everything: JFI = 1/n.
	if got := JainIndex([]float64{30, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("single-hog JFI = %v, want 1/3", got)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty JFI should be 0")
	}
}

func TestHarm(t *testing.T) {
	if got := Harm(25, 12.5); got != 0.5 {
		t.Errorf("harm = %v, want 0.5", got)
	}
	if got := Harm(25, 30); got != 0 {
		t.Error("negative harm not clamped")
	}
	if got := HarmInverse(20, 40); got != 0.5 {
		t.Errorf("delay harm = %v, want 0.5", got)
	}
	if got := HarmInverse(40, 20); got != 0 {
		t.Error("delay improvement should be 0 harm")
	}
}

func TestTimelineWindows(t *testing.T) {
	tl := PaperTimeline
	of, ot := tl.OriginalWindow()
	if of != 185*time.Second-185*time.Second/3 || ot != 185*time.Second {
		t.Errorf("original window = [%v, %v]", of, ot)
	}
	af, at := tl.AdjustedWindow()
	// Paper: 310-370 s.
	if at != 370*time.Second || af < 308*time.Second || af > 312*time.Second {
		t.Errorf("adjusted window = [%v, %v], want ~[310s, 370s]", af, at)
	}
	ff, ft := tl.FairnessWindow()
	// Paper: 220-370 s.
	if ft != 370*time.Second || ff != 222*time.Second {
		t.Errorf("fairness window = [%v, %v], want [222s, 370s]", ff, ft)
	}
}

func TestTimelineScale(t *testing.T) {
	tl := PaperTimeline.Scale(0.1)
	if tl.FlowStart != 18500*time.Millisecond {
		t.Errorf("scaled flow start = %v", tl.FlowStart)
	}
	if tl.TraceEnd != 54*time.Second {
		t.Errorf("scaled trace end = %v", tl.TraceEnd)
	}
}

func TestSettleTimeImmediate(t *testing.T) {
	s := mkSeries(100*time.Second, func(time.Duration) float64 { return 10 })
	d, ok := SettleTime(s, 50*time.Second, 100*time.Second, 10, 0.5)
	if !ok || d != 0 {
		t.Errorf("already-settled series: %v %v", d, ok)
	}
}

func TestWindowOKSignal(t *testing.T) {
	s := Series{Bin: time.Second, V: []float64{1, 2, 3, 4}}

	if w, ok := s.Window(0, 2*time.Second); !ok || len(w) != 2 {
		t.Errorf("Window(0,2s) = %v, %v", w, ok)
	}
	// Inverted and point windows hold no data.
	if _, ok := s.Window(2*time.Second, time.Second); ok {
		t.Error("inverted window reported ok")
	}
	if _, ok := s.Window(time.Second, time.Second); ok {
		t.Error("empty window reported ok")
	}
	// A window entirely past the data clamps to nothing.
	if _, ok := s.Window(10*time.Second, 20*time.Second); ok {
		t.Error("beyond-data window reported ok")
	}
	// Empty and zero-bin series never report ok.
	if _, ok := (Series{Bin: time.Second}).Window(0, time.Second); ok {
		t.Error("empty series reported ok")
	}
	if _, ok := (Series{V: []float64{1}}).Window(0, time.Second); ok {
		t.Error("zero-bin series reported ok")
	}

	// The OK variants distinguish "no data" from "mean of zero"; the plain
	// variants keep the documented zero-value contract.
	if m, ok := s.MeanBetweenOK(0, 2*time.Second); !ok || m != 1.5 {
		t.Errorf("MeanBetweenOK = %v, %v", m, ok)
	}
	if _, ok := s.MeanBetweenOK(10*time.Second, 20*time.Second); ok {
		t.Error("MeanBetweenOK beyond data reported ok")
	}
	if got := s.MeanBetween(10*time.Second, 20*time.Second); got != 0 {
		t.Errorf("MeanBetween beyond data = %v, want 0", got)
	}
	if _, ok := s.StdBetweenOK(10*time.Second, 20*time.Second); ok {
		t.Error("StdBetweenOK beyond data reported ok")
	}
}

func TestResponseRecoveryEmptyWindows(t *testing.T) {
	tl := Timeline{FlowStart: 185 * time.Second, FlowStop: 370 * time.Second, TraceEnd: 540 * time.Second}

	// An empty series must not "settle": with no data in the reference
	// windows the target level would be a fabricated zero, and any
	// zero-valued series would instantly match it.
	rr := MeasureResponseRecovery(Series{Bin: 500 * time.Millisecond}, tl)
	if rr.Responded || rr.Recovered {
		t.Errorf("empty series settled: %+v", rr)
	}
	if rr.Response != tl.FlowStop-tl.FlowStart {
		t.Errorf("response = %v, want full scan window", rr.Response)
	}
	if rr.Recovery != tl.TraceEnd-tl.FlowStop {
		t.Errorf("recovery = %v, want full scan window", rr.Recovery)
	}

	// A series truncated before the adjusted window behaves the same way
	// for response, since the adjusted level cannot be measured.
	short := Series{Bin: time.Second, V: make([]float64, 100)} // 100 s of data
	for i := range short.V {
		short.V[i] = 20
	}
	rr = MeasureResponseRecovery(short, tl)
	if rr.Responded || rr.Recovered {
		t.Errorf("truncated series settled: %+v", rr)
	}
}

// BenchmarkSeriesWindow pins the zero-copy contract: Window returns a view
// over the backing array, not a fresh slice, so per-call cost is two index
// clamps and 0 allocs.
func BenchmarkSeriesWindow(b *testing.B) {
	s := Series{Bin: 100 * time.Millisecond, V: make([]float64, 5400)}
	for i := range s.V {
		s.V[i] = float64(i)
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		w, ok := s.Window(185*time.Second, 370*time.Second)
		if !ok {
			b.Fatal("window empty")
		}
		sink += w[0]
	}
	_ = sink
}

// TestWindowIsView asserts Window aliases the series' backing array rather
// than copying it — the alloc-free guarantee FlowSummary and the QoE
// pipeline rely on per run.
func TestWindowIsView(t *testing.T) {
	s := Series{Bin: time.Second, V: []float64{1, 2, 3, 4, 5}}
	w, ok := s.Window(time.Second, 4*time.Second)
	if !ok || len(w) != 3 {
		t.Fatalf("window = %v ok=%v", w, ok)
	}
	if &w[0] != &s.V[1] {
		t.Fatal("Window copied instead of aliasing the backing array")
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := s.Window(time.Second, 4*time.Second); !ok {
			t.Fatal("window empty")
		}
	}); n != 0 {
		t.Errorf("Window: %.1f allocs/op, want 0", n)
	}
}
