package packet

// Pool is a per-run freelist of Packets. The simulation core is single-
// goroutine by construction (one engine, one event loop), so the pool is a
// plain LIFO slice rather than a sync.Pool: no locks, no per-P caches, and
// — critically for the testbed's determinism contract — no GC-driven
// emptying, so reuse order is a pure function of the run and allocation
// behaviour never perturbs timing-sensitive code paths.
//
// All methods are nil-receiver safe: a nil *Pool degrades to ordinary
// garbage-collected allocation, which lets hosts and network elements run
// unpooled (e.g. in unit tests) with zero branches at the call sites.
//
// A Pool must only be used from the goroutine running its engine.
type Pool struct {
	free []*Packet

	// Counters for observability; see PoolStats.
	gets   uint64
	puts   uint64
	allocs uint64
}

// PoolStats is a snapshot of a pool's traffic.
type PoolStats struct {
	// Gets is the number of packets handed out.
	Gets uint64
	// Puts is the number of packets returned.
	Puts uint64
	// Allocs is the number of Gets that had to allocate because the
	// freelist was empty; Gets - Allocs packets were recycled.
	Allocs uint64
	// FreeLen is the current freelist depth.
	FreeLen int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, reusing a released one when available. On a
// nil pool it simply allocates.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.pooled = false
		return p
	}
	pl.allocs++
	return &Packet{}
}

// Put zeroes p and returns it to the freelist. The caller must be the last
// holder: retaining p (or anything reached through p.App) after Put is a
// use-after-release bug. Releasing the same packet twice panics, since an
// aliased freelist entry would corrupt later runs silently. Put on a nil
// pool or with a nil packet is a no-op.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.pooled {
		panic("packet: double release to pool")
	}
	if ref, ok := p.App.(AppRef); ok {
		ref.Release()
	}
	*p = Packet{pooled: true}
	pl.puts++
	pl.free = append(pl.free, p)
}

// Clone returns a copy of p drawn from the pool (or allocated on a nil
// pool), for duplicate injection. The copy shares p.App — fine for handlers
// that only read metadata during Handle, which is all the pool contract
// permits anyway. Reference-counted payloads are retained for the copy so
// each of the two packets carries its own release.
func (pl *Pool) Clone(p *Packet) *Packet {
	c := pl.Get()
	*c = *p
	c.pooled = false
	if ref, ok := c.App.(AppRef); ok {
		ref.Retain()
	}
	return c
}

// Stats returns a snapshot of the pool's counters (zero value for a nil
// pool).
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: pl.gets, Puts: pl.puts, Allocs: pl.allocs, FreeLen: len(pl.free)}
}
