// Package packet defines the packet model shared by every network element
// and protocol implementation in the simulator. A Packet is deliberately a
// flat struct rather than a layered decoder: the simulator always knows what
// it put on the wire, so the gopacket-style decode path would be pure
// overhead. Flow identity, transport role, and application metadata are
// carried as typed fields.
package packet

import (
	"fmt"

	"repro/internal/sim"
)

// Addr identifies a host (endpoint) in the simulated topology.
type Addr int

// String formats the address for traces.
func (a Addr) String() string { return fmt.Sprintf("h%d", int(a)) }

// FlowID identifies a transport flow. Flow identity is assigned by the
// scenario builder; both directions of a connection share one FlowID.
type FlowID int

// Kind classifies what role a packet plays so traces and queues can account
// for it without inspecting payloads.
type Kind uint8

// Packet kinds.
const (
	KindData     Kind = iota // TCP payload segment
	KindAck                  // TCP pure ACK
	KindFrame                // game-stream video frame fragment (UDP)
	KindFeedback             // game-stream receiver report (UDP)
	KindPing                 // echo request
	KindPong                 // echo reply
)

var kindNames = [...]string{"data", "ack", "frame", "feedback", "ping", "pong"}

// String returns a short name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Header sizes in bytes, matching what the paper's Wireshark traces would
// count on the wire (Ethernet + IP + transport).
const (
	EthIPOverhead = 14 + 20 // Ethernet II + IPv4
	TCPHeader     = 20
	UDPHeader     = 8

	// MTU is the maximum on-wire packet size.
	MTU = 1514
	// MSS is the maximum TCP payload per segment.
	MSS = MTU - EthIPOverhead - TCPHeader
)

// Packet is one simulated datagram. Fields beyond Src/Dst/Size are consumed
// only by the protocol endpoints; network elements treat packets as opaque
// sized objects.
type Packet struct {
	ID   uint64
	Flow FlowID
	Kind Kind
	Src  Addr
	Dst  Addr
	// Size is the total on-wire size in bytes, headers included.
	Size int

	// Transport fields (TCP semantics; also reused by the game stream for
	// sequence accounting).
	Seq     int64 // first payload byte (TCP) or fragment sequence (UDP)
	Ack     int64 // cumulative ACK (TCP)
	Payload int   // payload bytes (Size minus headers)

	// SentAt is stamped by the sender when the packet enters the network.
	SentAt sim.Time

	// EchoTS carries the peer's timestamp for RTT measurement (TCP
	// timestamp option / RTCP-style echo).
	EchoTS sim.Time

	// ECT marks the packet ECN-capable; CE is set by an AQM that would
	// otherwise have dropped it (RFC 3168 semantics).
	ECT bool
	CE  bool

	// Retx marks a retransmitted copy (TCP retransmission or game-stream
	// NACK repair), so receivers can exclude repairs from sequence-gap
	// loss accounting without consulting App.
	Retx bool

	// App carries application-specific metadata (e.g. a *gamestream frame
	// descriptor). Network elements never touch it. Payloads that implement
	// AppRef are reference-counted by the Pool, so one descriptor can be
	// shared flyweight-style across many packets.
	App interface{}

	// pooled marks a packet currently resting in a Pool's freelist, the
	// guard that turns a double release into a panic instead of silent
	// aliasing corruption.
	pooled bool
}

// String formats a packet for debugging traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s flow=%d seq=%d ack=%d size=%d",
		p.Kind, p.Src, p.Dst, p.Flow, p.Seq, p.Ack, p.Size)
}

// AppRef is the optional reference-counting contract for App payloads that
// are shared across packets (flyweights). Pool.Put calls Release exactly
// once per released packet whose App implements it, and Pool.Clone calls
// Retain on the copy, so the payload's owner can recycle it when the last
// on-wire reference disappears. Implementations are single-goroutine like
// everything else on the packet path — plain integer counters suffice.
type AppRef interface {
	Retain()
	Release()
}

// A Handler consumes packets, either as a network hop or a final endpoint.
type Handler interface {
	Handle(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// Handle calls f(p).
func (f HandlerFunc) Handle(p *Packet) { f(p) }
