package packet

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindData: "data", KindAck: "ack", KindFrame: "frame",
		KindFeedback: "feedback", KindPing: "ping", KindPong: "pong",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestAddrString(t *testing.T) {
	if Addr(3).String() != "h3" {
		t.Errorf("Addr(3) = %q", Addr(3).String())
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Kind: KindData, Src: 1, Dst: 2, Flow: 7, Seq: 100, Ack: 50, Size: 1500}
	got := p.String()
	for _, want := range []string{"data", "h1->h2", "flow=7", "seq=100", "size=1500"} {
		if !contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func TestHandlerFunc(t *testing.T) {
	called := false
	h := HandlerFunc(func(p *Packet) { called = true })
	h.Handle(&Packet{})
	if !called {
		t.Error("HandlerFunc did not dispatch")
	}
}

func TestMSSConsistent(t *testing.T) {
	if MSS != MTU-EthIPOverhead-TCPHeader {
		t.Errorf("MSS = %d inconsistent with MTU %d", MSS, MTU)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
