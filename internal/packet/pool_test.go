package packet

import "testing"

func TestPoolReusesAndZeroes(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	p.Flow = 7
	p.Seq = 99
	p.Size = 1500
	p.App = "payload"
	pool.Put(p)

	q := pool.Get()
	if q != p {
		t.Fatal("pool did not reuse the released packet")
	}
	if q.Flow != 0 || q.Seq != 0 || q.Size != 0 || q.App != nil {
		t.Fatalf("reused packet not zeroed: %+v", q)
	}
	if q.pooled {
		t.Fatal("checked-out packet still marked pooled")
	}

	s := pool.Stats()
	if s.Gets != 2 || s.Puts != 1 || s.Allocs != 1 {
		t.Fatalf("stats = %+v, want gets=2 puts=1 allocs=1", s)
	}
}

func TestPoolLIFOOrder(t *testing.T) {
	pool := NewPool()
	a, b := pool.Get(), pool.Get()
	pool.Put(a)
	pool.Put(b)
	// LIFO: the most recently released packet comes back first. This keeps
	// reuse order a pure function of the simulation's own packet lifecycle,
	// which the determinism tests rely on.
	if got := pool.Get(); got != b {
		t.Error("expected LIFO reuse order")
	}
	if got := pool.Get(); got != a {
		t.Error("expected second Get to return the older packet")
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	pool.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	pool.Put(p)
}

// TestNilPoolSafe checks the unpooled degradation: hosts without a pool
// (unit tests construct them directly) allocate on Get and drop on Put, so
// no call site needs a nil branch.
func TestNilPoolSafe(t *testing.T) {
	var pool *Pool
	p := pool.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pool.Put(p) // must not panic
}

func TestPoolAllocsSteadyState(t *testing.T) {
	pool := NewPool()
	if n := testing.AllocsPerRun(100, func() {
		p := pool.Get()
		pool.Put(p)
	}); n != 0 {
		t.Errorf("steady-state Get/Put: %.1f allocs/op, want 0", n)
	}
}
