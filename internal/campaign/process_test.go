package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// These tests exercise the campaign machinery the way production does: real
// gscampaign worker processes sharing a directory and a cache, killed with
// SIGKILL mid-shard, racing each other on purpose, and recovering from
// deliberately corrupted cache entries — with the merged outputs required
// to stay byte-identical through all of it.

// procSpecText is sized so a 4-worker fleet is busy for long enough that a
// kill at ~100 ms lands mid-shard: 24 runs in 6 shards of 4.
const procSpecText = `
[campaign]
name = proc-crash
seed = 7
iterations = 2
scale = 0.06
shards = 6

[grid]
systems = stadia, geforce, luna
ccas = cubic, solo
capacities = 25mbit
queue_mults = 0.5, 2
`

// raceSpecText is the smaller grid the contention tests race over: 12 runs
// in 4 shards.
const raceSpecText = `
[campaign]
name = proc-race
seed = 7
iterations = 1
scale = 0.06
shards = 4

[grid]
systems = stadia, geforce, luna
ccas = cubic, solo
capacities = 25mbit
queue_mults = 0.5, 2
`

var (
	binOnce sync.Once
	binDir  string
	binPath string
	binErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// gscampaignBin builds the gscampaign binary once per test process.
func gscampaignBin(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		binDir, binErr = os.MkdirTemp("", "gscampaign-bin-")
		if binErr != nil {
			return
		}
		binPath = filepath.Join(binDir, "gscampaign")
		cmd := exec.Command("go", "build", "-o", binPath, "./cmd/gscampaign")
		cmd.Dir = "../.." // module root, so package paths resolve
		if out, err := cmd.CombinedOutput(); err != nil {
			binErr = fmt.Errorf("build gscampaign: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

// runBin executes the gscampaign binary and fails the test on a non-zero
// exit, returning the combined output either way.
func runBin(t *testing.T, bin string, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("gscampaign %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// startWorker launches one gscampaign -worker process over dir/cacheDir.
func startWorker(t *testing.T, ctx context.Context, bin, dir, cacheDir, owner string, ignoreClaims bool) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	args := []string{"-worker", "-dir", dir, "-cache", cacheDir,
		"-owner", owner, "-lease", "1s", "-poll", "50ms", "-quiet"}
	if ignoreClaims {
		args = append(args, "-ignore-claims")
	}
	var out bytes.Buffer
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start worker %s: %v", owner, err)
	}
	return cmd, &out
}

func writeSpecFile(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.campaign")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestProcessCrashResumeByteIdentical is the headline crash story: a
// 4-worker fleet loses one worker to SIGKILL mid-shard, the survivors steal
// its expired lease and finish, -resume merges — and the merged
// deterministic telemetry and runlog are byte-identical to an uninterrupted
// single-process run of the same spec.
func TestProcessCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process tests skipped in -short mode")
	}
	bin := gscampaignBin(t)
	spec := writeSpecFile(t, procSpecText)

	// Reference: the whole campaign in one uninterrupted process.
	refDir := filepath.Join(t.TempDir(), "ref")
	runBin(t, bin, "-spec", spec, "-dir", refDir, "-quiet")
	refDet := readFileT(t, MergedDetPath(refDir))
	refLog := readFileT(t, MergedRunlogPath(refDir))

	// The crashing fleet: initialise the directory, start 4 workers, and
	// SIGKILL one while its first shard is still executing.
	dir := filepath.Join(t.TempDir(), "crash")
	cacheDir := filepath.Join(dir, "cache")
	sp := parseSpec(t, procSpecText)
	if _, _, err := Init(dir, sp, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	type worker struct {
		cmd *exec.Cmd
		out *bytes.Buffer
	}
	var fleet []worker
	for i := 0; i < 4; i++ {
		cmd, out := startWorker(t, ctx, bin, dir, cacheDir, fmt.Sprintf("w%d", i), false)
		fleet = append(fleet, worker{cmd, out})
	}
	time.Sleep(100 * time.Millisecond)
	if err := fleet[0].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL worker 0: %v", err)
	}
	if err := fleet[0].cmd.Wait(); err == nil {
		t.Fatal("worker 0 exited cleanly before the kill; campaign too fast to test crashes")
	}
	for i := 1; i < 4; i++ {
		if err := fleet[i].cmd.Wait(); err != nil {
			t.Fatalf("worker %d: %v\n%s", i, err, fleet[i].out)
		}
	}

	// The survivors finished every shard, including whatever the dead
	// worker had claimed (its lease expired and was stolen).
	m, _, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := Status(dir, m); done != m.Shards {
		t.Fatalf("fleet left %d of %d shards unfinished", m.Shards-(done), m.Shards)
	}

	// Resume merges; nothing re-executes.
	runBin(t, bin, "-dir", dir, "-cache", cacheDir, "-resume", "-quiet")
	if got := readFileT(t, MergedDetPath(dir)); !bytes.Equal(got, refDet) {
		t.Error("crashed campaign deterministic telemetry differs from uninterrupted run")
	}
	if got := readFileT(t, MergedRunlogPath(dir)); !bytes.Equal(got, refLog) {
		t.Error("crashed campaign merged runlog differs from uninterrupted run")
	}
}

// TestProcessCacheContention races two -ignore-claims workers over every
// shard of one campaign: both execute everything, their atomic Puts and
// publishes may interleave arbitrarily, and the result must still be a
// complete, mergeable campaign whose cache holds exactly one intact entry
// per run. A renamed replay through the same cache then proves every entry
// is readable (100% hit rate), and a deliberately truncated blob proves the
// integrity check fires and the run is recomputed across processes.
func TestProcessCacheContention(t *testing.T) {
	if testing.Short() {
		t.Skip("process tests skipped in -short mode")
	}
	bin := gscampaignBin(t)
	base := t.TempDir()
	cacheDir := filepath.Join(base, "cache")

	// Race two unclaimed workers over the campaign.
	dir1 := filepath.Join(base, "race")
	sp := parseSpec(t, raceSpecText)
	if _, _, err := Init(dir1, sp, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmdA, outA := startWorker(t, ctx, bin, dir1, cacheDir, "race-a", true)
	cmdB, outB := startWorker(t, ctx, bin, dir1, cacheDir, "race-b", true)
	if err := cmdA.Wait(); err != nil {
		t.Fatalf("worker a: %v\n%s", err, outA)
	}
	if err := cmdB.Wait(); err != nil {
		t.Fatalf("worker b: %v\n%s", err, outB)
	}
	runBin(t, bin, "-dir", dir1, "-cache", cacheDir, "-resume", "-quiet")
	det1 := readFileT(t, MergedDetPath(dir1))

	// Exactly one blob per distinct run, despite the duplicated Puts.
	blobs, err := filepath.Glob(filepath.Join(cacheDir, "*", "*.blob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != sp.Total() {
		t.Fatalf("cache holds %d blobs, want %d", len(blobs), sp.Total())
	}

	// A renamed campaign over the same cache replays every run: the name is
	// not part of the cache key, so 100% of lookups must hit — which also
	// proves no racing Put left a torn blob behind.
	replaySpec := writeSpecFile(t, strings.Replace(raceSpecText, "name = proc-race", "name = proc-replay", 1))
	dir2 := filepath.Join(base, "replay")
	out := runBin(t, bin, "-spec", replaySpec, "-dir", dir2, "-cache", cacheDir, "-quiet")
	if !strings.Contains(out, "hit rate 100.0%") {
		t.Fatalf("replay through the contended cache was not fully hit:\n%s", out)
	}
	if det2 := readFileT(t, MergedDetPath(dir2)); !bytes.Equal(det2, det1) {
		t.Error("replayed campaign deterministic telemetry differs from the raced one")
	}

	// Truncate one blob. The next process must detect the damage, recompute
	// that run, repair the entry, and still produce identical telemetry.
	if err := truncateBlob(blobs[0]); err != nil {
		t.Fatal(err)
	}
	repairSpec := writeSpecFile(t, strings.Replace(raceSpecText, "name = proc-race", "name = proc-repair", 1))
	dir3 := filepath.Join(base, "repair")
	out = runBin(t, bin, "-spec", repairSpec, "-dir", dir3, "-cache", cacheDir, "-quiet")
	if strings.Contains(out, "hit rate 100.0%") {
		t.Fatalf("truncated blob went undetected (full hit rate):\n%s", out)
	}
	if det3 := readFileT(t, MergedDetPath(dir3)); !bytes.Equal(det3, det1) {
		t.Error("campaign through a truncated cache entry differs from the raced one")
	}
	// The recompute overwrote the entry: one more replay is fully hit again.
	finalSpec := writeSpecFile(t, strings.Replace(raceSpecText, "name = proc-race", "name = proc-final", 1))
	dir4 := filepath.Join(base, "final")
	out = runBin(t, bin, "-spec", finalSpec, "-dir", dir4, "-cache", cacheDir, "-quiet")
	if !strings.Contains(out, "hit rate 100.0%") {
		t.Fatalf("truncated entry was not repaired by the recompute:\n%s", out)
	}
}

// truncateBlob cuts a cache blob to half its length, simulating a partial
// write that somehow landed (a filesystem that lost the tail after rename).
func truncateBlob(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, fi.Size()/2)
}
