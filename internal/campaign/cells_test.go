package campaign

import (
	"reflect"
	"testing"

	"repro/internal/experiment"
)

func TestGridCellsMatchSweepStriping(t *testing.T) {
	sp := parseSpec(t, gridSpecText)
	cells := sp.Cells()
	if len(cells) != sp.Total() {
		t.Fatalf("len(cells) = %d, want %d", len(cells), sp.Total())
	}
	// Re-derive the expected order the way RunSweep builds its job list:
	// iteration outer, then cca, capacity, queue, system inner.
	i := 0
	for it := 0; it < sp.Iterations; it++ {
		for _, cca := range sp.CCAs {
			for _, capy := range sp.Capacities {
				for _, qm := range sp.QueueMults {
					for _, sys := range sp.Systems {
						want := experiment.Condition{System: sys, CCA: cca, Capacity: capy, QueueMult: qm}
						c := cells[i]
						if c.Cond != want || c.Iter != it || c.Index != i {
							t.Fatalf("cell %d = %+v, want cond=%v iter=%d", i, c, want, it)
						}
						if c.Seed != experiment.RunSeed(sp.Seed, it, want) {
							t.Fatalf("cell %d seed mismatch", i)
						}
						if c.BaseRTT != 0 {
							t.Fatalf("grid cell %d has sampled RTT %v", i, c.BaseRTT)
						}
						i++
					}
				}
			}
		}
	}
}

func TestMCCellsDeterministicAndInBounds(t *testing.T) {
	sp := parseSpec(t, mcSpecText)
	cells := sp.Cells()
	if len(cells) != sp.Draws {
		t.Fatalf("len(cells) = %d, want %d", len(cells), sp.Draws)
	}
	again := sp.Cells()
	if !reflect.DeepEqual(cells, again) {
		t.Fatal("expansion is not deterministic")
	}
	seeds := map[uint64]bool{}
	for _, c := range cells {
		if mb := c.Cond.Capacity.Mbit(); mb < 10 || mb > 50 {
			t.Fatalf("cell %d capacity %g Mb/s outside rate_mbps support", c.Index, mb)
		}
		if ms := c.BaseRTT.Seconds() * 1000; ms < 10 || ms > 40 {
			t.Fatalf("cell %d RTT %g ms outside rtt_ms support", c.Index, ms)
		}
		switch c.Cond.QueueMult {
		case 0.5, 2, 7:
		default:
			t.Fatalf("cell %d queue mult %g not a declared point mass", c.Index, c.Cond.QueueMult)
		}
		if c.Cond.System != "stadia" {
			t.Fatalf("cell %d system %q", c.Index, c.Cond.System)
		}
		if c.Cond.CCA != "cubic" && c.Cond.CCA != "bbr" {
			t.Fatalf("cell %d cca %q", c.Index, c.Cond.CCA)
		}
		if seeds[c.Seed] {
			t.Fatalf("duplicate seed %d", c.Seed)
		}
		seeds[c.Seed] = true
		if c.Iter != c.Index {
			t.Fatalf("mc cell %d has iter %d", c.Index, c.Iter)
		}
	}
}

func TestMCDrawsVary(t *testing.T) {
	// With a 40 Mb/s-wide rate support, 10 draws collapsing to one value
	// would mean the per-draw RNG streams are correlated.
	sp := parseSpec(t, mcSpecText)
	caps := map[float64]bool{}
	for _, c := range sp.Cells() {
		caps[c.Cond.Capacity.Mbit()] = true
	}
	if len(caps) < 5 {
		t.Fatalf("only %d distinct capacities over %d draws", len(caps), sp.Draws)
	}
}

func TestShardRangesPartition(t *testing.T) {
	sp := parseSpec(t, gridSpecText) // 32 cells, 3 shards → 11/11/10
	n := sp.ShardCount()
	covered := 0
	prevEnd := 0
	for i := 0; i < n; i++ {
		start, end := sp.ShardRange(i)
		if start != prevEnd {
			t.Fatalf("shard %d starts at %d, want %d", i, start, prevEnd)
		}
		if end <= start {
			t.Fatalf("shard %d empty range [%d,%d)", i, start, end)
		}
		covered += end - start
		prevEnd = end
	}
	if covered != sp.Total() || prevEnd != sp.Total() {
		t.Fatalf("shards cover %d of %d cells", covered, sp.Total())
	}
}
