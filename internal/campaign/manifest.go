package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ManifestSchema versions the campaign directory layout.
const ManifestSchema = "gs-campaign-v1"

// Manifest is the campaign directory's root document: the campaign's
// identity plus the canonical spec text every worker re-expands. It is
// written once at initialisation and never modified; all mutable state
// lives in the per-shard files.
type Manifest struct {
	Schema string `json:"schema"`
	// Name and ID identify the campaign; ID is the SHA-256 of Spec.
	Name string `json:"name"`
	ID   string `json:"id"`
	// Spec is the canonical campaign spec text (see Spec.Canonical).
	Spec string `json:"spec"`
	// Total, Shards and ShardSize record the expansion's shape, purely as a
	// cross-check: readers recompute them from Spec and refuse a manifest
	// that disagrees (a hand-edited spec would silently re-shard otherwise).
	Total     int `json:"total"`
	Shards    int `json:"shards"`
	ShardSize int `json:"shard_size"`
}

// NewManifest builds the manifest for a parsed spec.
func NewManifest(sp *Spec) *Manifest {
	return &Manifest{
		Schema:    ManifestSchema,
		Name:      sp.Name,
		ID:        sp.ID(),
		Spec:      sp.Canonical(),
		Total:     sp.Total(),
		Shards:    sp.ShardCount(),
		ShardSize: sp.ShardSize(),
	}
}

// Campaign directory layout. The snapshot file doubles as the shard's done
// marker: it is renamed into place only after the shard's runlog is, so its
// presence implies the whole shard published.
func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

// ClaimPath is shard i's lease file.
func ClaimPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.claim", i))
}

// RunlogPath is shard i's structured run log (canonical records, one JSON
// line per run, in cell order).
func RunlogPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.runs.jsonl", i))
}

// SnapPath is shard i's telemetry snapshot — and its done marker.
func SnapPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.snap.json", i))
}

// Merged output paths.
func MergedSnapPath(dir string) string   { return filepath.Join(dir, "merged.snap.json") }
func MergedDetPath(dir string) string    { return filepath.Join(dir, "merged.det.json") }
func MergedRunlogPath(dir string) string { return filepath.Join(dir, "merged.runs.jsonl") }

// WriteManifest persists the manifest atomically (temp + rename).
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: marshal manifest: %w", err)
	}
	return atomicWrite(manifestPath(dir), append(data, '\n'))
}

// ReadManifest loads and cross-checks the manifest: the embedded spec must
// re-parse, and its identity and expansion shape must match what the
// manifest claims.
func ReadManifest(dir string) (*Manifest, *Spec, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("campaign: decode manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, nil, fmt.Errorf("campaign: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	sp, err := ParseSpec(strings.NewReader(m.Spec))
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: manifest spec: %w", err)
	}
	if got := sp.ID(); got != m.ID {
		return nil, nil, fmt.Errorf("campaign: manifest id %s does not match its spec (%s)", m.ID, got)
	}
	if sp.Total() != m.Total || sp.ShardCount() != m.Shards || sp.ShardSize() != m.ShardSize {
		return nil, nil, fmt.Errorf("campaign: manifest shape %d/%d/%d disagrees with spec %d/%d/%d",
			m.Total, m.Shards, m.ShardSize, sp.Total(), sp.ShardCount(), sp.ShardSize())
	}
	return &m, sp, nil
}

// ShardDone reports whether shard i has published (its snapshot exists).
func ShardDone(dir string, i int) bool {
	_, err := os.Stat(SnapPath(dir, i))
	return err == nil
}

// Status scans the campaign directory and returns each shard's completion
// plus the done count.
func Status(dir string, m *Manifest) (done []bool, n int) {
	done = make([]bool, m.Shards)
	for i := range done {
		if ShardDone(dir, i) {
			done[i] = true
			n++
		}
	}
	return done, n
}

// atomicWrite writes data to path via a temp file + rename in the same
// directory, so readers never observe a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}
