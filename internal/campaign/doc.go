// Package campaign is the fleet-scale experiment coordinator: it expands a
// declarative campaign spec — a full factorial grid or Monte-Carlo draws
// from empirical rate/RTT/queue distributions — into a deterministic cell
// list, partitions the cells into shards, and executes the shards across
// any number of cooperating worker processes that share one
// content-addressed run cache.
//
// The division of labour:
//
//   - spec.go parses the INI-style campaign file into a Spec and renders
//     the Spec back to its canonical text, whose SHA-256 is the campaign ID.
//   - cells.go expands the Spec into cells. Expansion is a pure function of
//     the canonical text: every process that reads the manifest derives the
//     identical cell list, seeds included, with nothing else to ship.
//   - manifest.go pins the campaign directory layout: manifest.json plus
//     per-shard claim, runlog, and snapshot files. A shard's snapshot file
//     doubles as its done marker (written atomically, so it either exists
//     completely or not at all).
//   - worker.go is the claim-execute-publish loop one worker process runs:
//     acquire a shard's lease file, execute its cells through
//     experiment.RunCached, publish the shard runlog and telemetry
//     snapshot, release, repeat until no shards remain.
//   - coordinator.go initialises (or resumes) the campaign directory,
//     spawns N worker processes, finishes any remaining shards in-process,
//     and merges the per-shard snapshots in shard order into the final
//     campaign telemetry.
//
// Correctness never depends on the claim files — they are leases that keep
// workers off each other's shards in the common case (see runcache's claim
// layer). A SIGKILL'd worker stops renewing; its lease expires; any other
// worker steals the shard and re-executes it, replaying every run the dead
// worker already cached. Because each shard's snapshot and runlog are pure
// functions of (spec, shard index) and the coordinator merges them in shard
// order, the merged deterministic telemetry is byte-identical however many
// workers ran, died, or raced.
package campaign
