package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/runcache"
)

// Worker default knobs.
const (
	DefaultLease = time.Minute
	DefaultPoll  = 200 * time.Millisecond
)

// Worker executes campaign shards: it claims a shard's lease file, runs the
// shard's cells sequentially through the shared run cache, publishes the
// shard's runlog and telemetry snapshot atomically, releases the claim, and
// moves on until no unfinished shard remains. Several Workers — in-process
// or in separate OS processes — cooperate safely over one campaign
// directory; see the package comment for the crash-recovery story.
type Worker struct {
	// Dir is the campaign directory; Manifest/Spec its parsed root state.
	Dir      string
	Manifest *Manifest
	Spec     *Spec
	// Cache is the shared run cache (nil runs uncached, which still works
	// but makes shard re-execution after a crash start from scratch).
	Cache *runcache.Cache
	// Owner names this worker in claim files; must be unique per worker.
	Owner string
	// Lease is the claim TTL; the worker renews at half-life while a shard
	// executes. Poll is the idle wait between scans when every unfinished
	// shard is claimed by someone else.
	Lease time.Duration
	Poll  time.Duration
	// IgnoreClaims skips claim acquisition entirely, so this worker races
	// everyone on every shard — a test hook for exercising the cache and
	// publish paths under deliberate cross-process contention.
	IgnoreClaims bool
	// Log, when non-nil, receives one line per shard event.
	Log io.Writer
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, format+"\n", args...)
	}
}

// Run executes shards until none are missing, returning how many this
// worker published. It returns early (with the context's error) when ctx is
// cancelled; the in-flight shard is abandoned unpublished and its lease
// left to expire, exactly like a crash.
func (w *Worker) Run(ctx context.Context) (executed int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	lease, poll := w.Lease, w.Poll
	if lease <= 0 {
		lease = DefaultLease
	}
	if poll <= 0 {
		poll = DefaultPoll
	}
	cells := w.Spec.Cells()
	n := w.Spec.ShardCount()
	// Start the scan at a per-owner offset so a fleet of workers spreads
	// over the shards instead of stampeding shard 0.
	offset := 0
	for _, c := range w.Owner {
		offset = (offset*31 + int(c)) % max(n, 1)
	}
	for {
		missing := 0
		for s := 0; s < n; s++ {
			if err := ctx.Err(); err != nil {
				return executed, err
			}
			i := (s + offset) % n
			if ShardDone(w.Dir, i) {
				continue
			}
			missing++
			var claim *runcache.Claim
			if !w.IgnoreClaims {
				c, ok, err := runcache.AcquireClaim(ClaimPath(w.Dir, i), w.Owner, lease)
				if err != nil {
					return executed, err
				}
				if !ok {
					continue // validly held by a live worker
				}
				claim = c
				// The previous holder may have published between our scan
				// and the steal; re-check before re-executing.
				if ShardDone(w.Dir, i) {
					_ = claim.Release()
					missing--
					continue
				}
			}
			start, end := w.Spec.ShardRange(i)
			w.logf("worker %s: shard %d (%d cells)", w.Owner, i, end-start)
			err := w.runShard(ctx, i, cells[start:end], claim, lease)
			if claim != nil {
				_ = claim.Release()
			}
			if err != nil {
				return executed, err
			}
			executed++
			missing--
		}
		if missing == 0 {
			// Every shard either done or (transiently) claimed; rescan once
			// more to distinguish. All done → exit.
			if _, done := Status(w.Dir, w.Manifest); done == n {
				return executed, nil
			}
		}
		select {
		case <-ctx.Done():
			return executed, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// runShard executes one shard's cells in order and publishes its outputs:
// first the runlog, then the snapshot (the done marker), both via
// temp+rename so a crash mid-publish leaves the shard cleanly unfinished.
func (w *Worker) runShard(ctx context.Context, shard int, cells []Cell, claim *runcache.Claim, lease time.Duration) error {
	agg := obs.NewAggregator()
	var before runcache.Stats
	if w.Cache != nil {
		before = w.Cache.Stats()
	}
	var runlog bytes.Buffer
	agg.SweepStart(len(cells))
	renewAt := time.Now().Add(lease / 2)
	for _, cell := range cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		if claim != nil && time.Now().After(renewAt) {
			if err := claim.Renew(lease); err != nil {
				return err
			}
			renewAt = time.Now().Add(lease / 2)
		}
		runStart := time.Now()
		res, hit := experiment.RunCached(w.Cache, cell.RunConfig(w.Spec))
		rec := res.Record(cell.Iter)
		rec.Cached = hit
		agg.RunDone(obs.Update{
			Cond: rec.Cond, Seed: rec.Seed, Iteration: rec.Iteration,
			RunWall: time.Since(runStart), Record: &rec,
		})
		line, err := json.Marshal(canonicalRecord(rec))
		if err != nil {
			return fmt.Errorf("campaign: marshal record: %w", err)
		}
		runlog.Write(line)
		runlog.WriteByte('\n')
	}
	agg.SweepDone(false, 0)
	snap := agg.Snapshot()
	// The health point is a live-process concern and the cache stats are
	// scoped to this shard's slice of this process's counters.
	snap.Health = nil
	if w.Cache != nil {
		delta := w.Cache.Stats().Sub(before)
		snap.Cache = &delta
	}
	if err := atomicWrite(RunlogPath(w.Dir, shard), runlog.Bytes()); err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: marshal snapshot: %w", err)
	}
	return atomicWrite(SnapPath(w.Dir, shard), append(data, '\n'))
}

// canonicalRecord scrubs the wall-clock execution fields from a record so
// shard runlogs are a pure function of (spec, shard): Cached depends on
// which process ran first, and the engine wall fields on host load, so both
// are zeroed. Everything else — metrics, counters, seeds — is deterministic
// and survives verbatim.
func canonicalRecord(r obs.Record) obs.Record {
	r.Cached = false
	r.Engine.WallSeconds = 0
	r.Engine.Speedup = 0
	r.Engine.EventsPerSecond = 0
	return r
}
