package campaign

import (
	"strings"
	"testing"
)

const gridSpecText = `
# paper-sized grid, cut down
[campaign]
name = unit-grid
seed = 7
mode = grid
iterations = 2
scale = 0.02
shards = 3

[grid]
systems = stadia, luna
ccas = cubic, solo
capacities = 15mbit, 25mbit
queue_mults = 0.5, 2
`

const mcSpecText = `
[campaign]
name = unit-mc
seed = 11
mode = mc
draws = 10
scale = 0.02
shards = 4

[mc]
systems = stadia
ccas = cubic, bbr
rate_mbps = 10..30:3, 30..50:1
rtt_ms = 10..40
queue_mult = 0.5:1, 2:2, 7:1
`

func parseSpec(t *testing.T, text string) *Spec {
	t.Helper()
	sp, err := ParseSpec(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestParseGridSpec(t *testing.T) {
	sp := parseSpec(t, gridSpecText)
	if sp.Name != "unit-grid" || sp.Seed != 7 || sp.Mode != ModeGrid {
		t.Fatalf("header = %q/%d/%q", sp.Name, sp.Seed, sp.Mode)
	}
	if len(sp.Systems) != 2 || len(sp.CCAs) != 2 || len(sp.Capacities) != 2 || len(sp.QueueMults) != 2 {
		t.Fatalf("axes = %d/%d/%d/%d", len(sp.Systems), len(sp.CCAs), len(sp.Capacities), len(sp.QueueMults))
	}
	if sp.CCAs[1] != "" {
		t.Fatalf("solo cca = %q, want empty", sp.CCAs[1])
	}
	if got := sp.Total(); got != 2*2*2*2*2 {
		t.Fatalf("Total = %d, want 32", got)
	}
	if sp.ShardCount() != 3 || sp.ShardSize() != 11 {
		t.Fatalf("shards = %d × %d", sp.ShardCount(), sp.ShardSize())
	}
}

func TestParseMCSpec(t *testing.T) {
	sp := parseSpec(t, mcSpecText)
	if sp.Mode != ModeMC || sp.Draws != 10 || sp.Total() != 10 {
		t.Fatalf("mode=%q draws=%d total=%d", sp.Mode, sp.Draws, sp.Total())
	}
	if sp.Rate == nil || sp.RTT == nil || sp.Queue == nil {
		t.Fatal("missing distributions")
	}
	if lo, hi := sp.Rate.Bounds(); lo != 10 || hi != 50 {
		t.Fatalf("rate bounds = (%g,%g)", lo, hi)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	for _, text := range []string{gridSpecText, mcSpecText} {
		sp := parseSpec(t, text)
		canon := sp.Canonical()
		back, err := ParseSpec(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical text does not re-parse: %v\n%s", err, canon)
		}
		if got := back.Canonical(); got != canon {
			t.Fatalf("canonical not a fixed point:\n%s\nvs\n%s", canon, got)
		}
		if back.ID() != sp.ID() {
			t.Fatal("round trip changed the campaign ID")
		}
	}
}

func TestIDSensitivity(t *testing.T) {
	base := parseSpec(t, gridSpecText)
	renamed := parseSpec(t, strings.Replace(gridSpecText, "name = unit-grid", "name = other", 1))
	reseeded := parseSpec(t, strings.Replace(gridSpecText, "seed = 7", "seed = 8", 1))
	if base.ID() == renamed.ID() {
		t.Error("renaming did not change the ID")
	}
	if base.ID() == reseeded.ID() {
		t.Error("reseeding did not change the ID")
	}
	if id := base.ID(); len(id) != 16 {
		t.Errorf("ID %q not 16 hex digits", id)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown-section", "[bogus]\n"},
		{"unknown-key", "[campaign]\nfrobnicate = 1\n"},
		{"key-outside-section", "name = x\n"},
		{"duplicate-key", "[campaign]\nseed = 1\nseed = 2\n"},
		{"duplicate-section", "[campaign]\n[campaign]\n"},
		{"unterminated-header", "[campaign\n"},
		{"bad-mode", "[campaign]\nmode = quantum\n"},
		{"grid-in-mc", "[campaign]\nmode = mc\ndraws = 1\n[grid]\n"},
		{"mc-in-grid", "[campaign]\n[mc]\nrate_mbps = 10\n"},
		{"mc-without-draws", "[campaign]\nmode = mc\n[mc]\nrate_mbps = 10\nrtt_ms = 20\nqueue_mult = 2\n"},
		{"mc-without-dists", "[campaign]\nmode = mc\ndraws = 5\n"},
		{"bad-system", "[grid]\nsystems = atari\n"},
		{"bad-cca", "[grid]\nccas = warp\n"},
		{"bad-capacity", "[grid]\ncapacities = -3mbit\n"},
		{"bad-queue", "[grid]\nqueue_mults = 0\n"},
		{"bad-aqm", "[grid]\naqm = red\n"},
		{"bad-name", "[campaign]\nname = sp aces\n"},
		{"bad-seed", "[campaign]\nseed = -1\n"},
		{"oversized-grid", "[campaign]\niterations = 2000000\n"},
		{"bad-shards", "[campaign]\nshards = 0\n"},
		{"bad-scale", "[campaign]\nscale = 0\n"},
		{"bad-dist-weight", "[campaign]\nmode = mc\ndraws = 1\n[mc]\nrate_mbps = 10:0\nrtt_ms = 20\nqueue_mult = 2\n"},
		{"bad-dist-range", "[campaign]\nmode = mc\ndraws = 1\n[mc]\nrate_mbps = 30..10\nrtt_ms = 20\nqueue_mult = 2\n"},
		{"dist-out-of-bounds", "[campaign]\nmode = mc\ndraws = 1\n[mc]\nrate_mbps = 0..99999999\nrtt_ms = 20\nqueue_mult = 2\n"},
		{"not-key-value", "[campaign]\njust words\n"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	sp := parseSpec(t, "[campaign]\nname = defaults\n")
	if sp.Mode != ModeGrid || sp.Iterations != 15 || sp.Scale != 1 {
		t.Fatalf("defaults = %q/%d/%g", sp.Mode, sp.Iterations, sp.Scale)
	}
	// Paper grid defaults: 3 systems × 2 ccas × 3 capacities × 3 queues.
	if got := sp.Total(); got != 15*3*2*3*3 {
		t.Fatalf("default Total = %d, want 810", got)
	}
	if sp.Shards != 16 {
		t.Fatalf("default shards = %d, want 16", sp.Shards)
	}
	// A tiny campaign never has more shards than cells.
	tiny := parseSpec(t, "[campaign]\nname = tiny\niterations = 1\n[grid]\nsystems = stadia\nccas = cubic\ncapacities = 25mbit\nqueue_mults = 2\n")
	if tiny.ShardCount() != 1 {
		t.Fatalf("tiny shards = %d, want 1", tiny.ShardCount())
	}
}

func TestParseSpecHostileInput(t *testing.T) {
	// Over-long line.
	if _, err := ParseSpec(strings.NewReader("[campaign]\nname = " + strings.Repeat("a", 8192))); err == nil {
		t.Error("8 KiB line accepted")
	}
	// Oversized spec body.
	var b strings.Builder
	b.WriteString("[campaign]\n")
	for i := 0; i < 600000; i++ {
		b.WriteString("# pad\n")
	}
	if _, err := ParseSpec(strings.NewReader(b.String())); err == nil {
		t.Error("multi-MiB spec accepted")
	}
}
