package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runcache"
	"repro/internal/units"
)

// tinySpecText is a 4-run campaign (2 iterations × cubic/solo) small enough
// for end-to-end execution in unit tests.
const tinySpecText = `
[campaign]
name = unit-e2e
seed = 7
iterations = 2
scale = 0.02
shards = 2

[grid]
systems = stadia
ccas = cubic, solo
capacities = 25mbit
queue_mults = 2
`

func openCache(t *testing.T) *runcache.Cache {
	t.Helper()
	c, err := runcache.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runTiny executes the tiny campaign in-process in a fresh directory and
// returns the result.
func runTiny(t *testing.T, dir string, cache *runcache.Cache) *Result {
	t.Helper()
	sp := parseSpec(t, tinySpecText)
	res, err := Run(context.Background(), sp, Options{Dir: dir, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func readRunlog(t *testing.T, path string) []obs.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestCampaignEndToEndMatchesSweep(t *testing.T) {
	res := runTiny(t, t.TempDir(), openCache(t))
	if res.Snapshot.Done != 4 || res.Snapshot.Total != 4 {
		t.Fatalf("done/total = %d/%d, want 4/4", res.Snapshot.Done, res.Snapshot.Total)
	}

	// The same four runs through the classic sweep path.
	var sweepLog bytes.Buffer
	experiment.RunSweep(context.Background(), experiment.SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"cubic", ""},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   metrics.PaperTimeline.Scale(0.02),
		BaseSeed:   7,
		RunLog:     obs.NewJSONL(&sweepLog),
		Workers:    2,
	})
	want, err := obs.ReadJSONL(&sweepLog)
	if err != nil {
		t.Fatal(err)
	}
	got := readRunlog(t, res.RunlogPath)
	if len(got) != len(want) {
		t.Fatalf("runlog has %d records, sweep produced %d", len(got), len(want))
	}
	normalize := func(recs []obs.Record) {
		for i := range recs {
			recs[i] = canonicalRecord(recs[i])
		}
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Cond != recs[j].Cond {
				return recs[i].Cond < recs[j].Cond
			}
			return recs[i].Seed < recs[j].Seed
		})
	}
	normalize(got)
	normalize(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("campaign records differ from sweep records for the same grid")
	}
}

func TestCampaignDetByteIdenticalAcrossRuns(t *testing.T) {
	// Two executions from scratch — separate directories, separate caches —
	// must publish byte-identical deterministic telemetry and runlogs.
	res1 := runTiny(t, t.TempDir(), openCache(t))
	res2 := runTiny(t, t.TempDir(), openCache(t))
	if !bytes.Equal(res1.Det, res2.Det) {
		t.Fatal("deterministic JSON differs across executions")
	}
	log1, err := os.ReadFile(res1.RunlogPath)
	if err != nil {
		t.Fatal(err)
	}
	log2, err := os.ReadFile(res2.RunlogPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(log1, log2) {
		t.Fatal("merged runlog differs across executions")
	}
	// And the published det file matches the in-memory result.
	onDisk, err := os.ReadFile(res1.DetPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimRight(onDisk, "\n"), res1.Det) {
		t.Fatal("merged.det.json does not match the returned bytes")
	}
}

func TestCampaignResumeExecutesOnlyMissing(t *testing.T) {
	dir := t.TempDir()
	cache := openCache(t)
	sp := parseSpec(t, tinySpecText)

	// Execute only shard 0, as a worker that then stops.
	m, sp2, err := Init(dir, sp, false)
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Dir: dir, Manifest: m, Spec: sp2, Cache: cache, Owner: "w0"}
	cells := sp2.Cells()
	start, end := sp2.ShardRange(0)
	if err := w.runShard(context.Background(), 0, cells[start:end], nil, DefaultLease); err != nil {
		t.Fatal(err)
	}
	if !ShardDone(dir, 0) || ShardDone(dir, 1) {
		t.Fatal("setup: want exactly shard 0 done")
	}

	// A second Run without -resume must refuse the initialised directory.
	if _, err := Run(context.Background(), sp, Options{Dir: dir, Cache: cache}); err == nil {
		t.Fatal("re-init without resume accepted")
	}

	// Resume completes only the missing shard and merges.
	res, err := Run(context.Background(), sp, Options{Dir: dir, Cache: cache, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsRun != 1 {
		t.Fatalf("resume executed %d shards, want 1", res.ShardsRun)
	}

	// The merged output is byte-identical to an uninterrupted run.
	ref := runTiny(t, t.TempDir(), openCache(t))
	if !bytes.Equal(res.Det, ref.Det) {
		t.Fatal("resumed campaign deterministic JSON differs from uninterrupted run")
	}
}

func TestWorkerStealsExpiredClaim(t *testing.T) {
	dir := t.TempDir()
	sp := parseSpec(t, tinySpecText)
	m, sp, err := Init(dir, sp, false)
	if err != nil {
		t.Fatal(err)
	}
	// A dead worker holds shard 0 with an expired lease.
	if _, ok, err := runcache.AcquireClaim(ClaimPath(dir, 0), "dead", -time.Second); err != nil || !ok {
		t.Fatalf("seed claim: ok=%v err=%v", ok, err)
	}
	w := &Worker{Dir: dir, Manifest: m, Spec: sp, Cache: openCache(t), Owner: "alive", Poll: 10 * time.Millisecond}
	n, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != m.Shards {
		t.Fatalf("worker ran %d shards, want %d (steal failed?)", n, m.Shards)
	}
}

func TestInitRejectsMismatchedSpec(t *testing.T) {
	dir := t.TempDir()
	sp := parseSpec(t, tinySpecText)
	if _, _, err := Init(dir, sp, false); err != nil {
		t.Fatal(err)
	}
	other := parseSpec(t, gridSpecText)
	if _, _, err := Init(dir, other, true); err == nil {
		t.Fatal("resume with a different spec accepted")
	}
	// Resume with a nil spec adopts the directory's own campaign.
	m, got, err := Init(dir, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != sp.ID() || got.Name != sp.Name {
		t.Fatalf("nil-spec resume loaded %s/%s", m.Name, m.ID)
	}
}

func TestInitRejectsStrayShardFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.snap.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Init(dir, parseSpec(t, tinySpecText), false); err == nil {
		t.Fatal("directory with stray shard files but no manifest accepted")
	}
}

func TestMergeRefusesPartialCampaign(t *testing.T) {
	dir := t.TempDir()
	sp := parseSpec(t, tinySpecText)
	m, sp, err := Init(dir, sp, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, m, sp); err == nil {
		t.Fatal("merge of an unexecuted campaign accepted")
	}
}
