package campaign

import (
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/units"
)

// Cell is one run of the campaign: a grid position (or Monte-Carlo draw)
// plus the deterministic seed derived from it. Cells are never persisted —
// every process re-expands them from the manifest's canonical spec text, so
// the only shared state is the spec itself.
type Cell struct {
	// Index is the cell's position in campaign order; shard membership is a
	// contiguous index range.
	Index int
	// Cond is the cell's grid condition.
	Cond experiment.Condition
	// Iter is the iteration the run reports in its record: the grid repeat
	// index, or the draw index in mc mode (unique per cell, which keeps the
	// telemetry reorder buffer deterministic when draws collide on Cond).
	Iter int
	// Seed is the run's deterministic seed, derived the same way RunSweep
	// derives sweep seeds.
	Seed uint64
	// BaseRTT is the sampled path RTT (mc mode); zero means the run default.
	BaseRTT time.Duration
}

// cellSeedStride separates per-draw RNG streams; the odd constant is the
// 64-bit golden ratio, the usual splitmix increment.
const cellSeedStride = 0x9e3779b97f4a7c15

// Cells expands the spec into its full cell list — a pure function of the
// canonical spec text. Grid mode mirrors RunSweep's striping exactly
// (iteration outer, then cca, capacity, queue, system inner) with
// RunSeed-derived seeds, so a one-shard grid campaign reproduces the
// equivalent sweep run for run. Monte-Carlo mode gives each draw its own
// RNG (seeded from the campaign seed and the draw index) and samples in a
// fixed order: system, cca, rate, rtt, queue.
func (sp *Spec) Cells() []Cell {
	total := sp.Total()
	cells := make([]Cell, 0, total)
	if sp.Mode == ModeMC {
		for d := 0; d < sp.Draws; d++ {
			rng := sim.NewRNG(sp.Seed + uint64(d)*cellSeedStride)
			cond := experiment.Condition{
				System: sp.Systems[rng.Intn(len(sp.Systems))],
				CCA:    sp.CCAs[rng.Intn(len(sp.CCAs))],
				AQM:    sp.AQM,
			}
			rateMbps := sp.Rate.Quantile(rng.Float64())
			rttMs := sp.RTT.Quantile(rng.Float64())
			cond.QueueMult = sp.Queue.Quantile(rng.Float64())
			cond.Capacity = units.Mbps(rateMbps)
			cells = append(cells, Cell{
				Index:   d,
				Cond:    cond,
				Iter:    d,
				Seed:    experiment.RunSeed(sp.Seed, d, cond),
				BaseRTT: time.Duration(rttMs * float64(time.Millisecond)),
			})
		}
		return cells
	}
	idx := 0
	for it := 0; it < sp.Iterations; it++ {
		for _, cca := range sp.CCAs {
			for _, capy := range sp.Capacities {
				for _, qm := range sp.QueueMults {
					for _, sys := range sp.Systems {
						cond := experiment.Condition{
							System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: sp.AQM,
						}
						cells = append(cells, Cell{
							Index: idx,
							Cond:  cond,
							Iter:  it,
							Seed:  experiment.RunSeed(sp.Seed, it, cond),
						})
						idx++
					}
				}
			}
		}
	}
	return cells
}

// RunConfig compiles one cell into the run configuration the simulator
// executes — the object whose canonical serialisation is the cache key.
func (c Cell) RunConfig(sp *Spec) experiment.RunConfig {
	return experiment.RunConfig{
		Condition: c.Cond,
		Timeline:  metrics.PaperTimeline.Scale(sp.Scale),
		Seed:      c.Seed,
		BaseRTT:   c.BaseRTT,
	}
}

// ShardSize is the cell count per shard (the last shard may be short).
func (sp *Spec) ShardSize() int {
	total := sp.Total()
	if total == 0 || sp.Shards == 0 {
		return 0
	}
	return (total + sp.Shards - 1) / sp.Shards
}

// ShardCount is the number of non-empty shards.
func (sp *Spec) ShardCount() int {
	size := sp.ShardSize()
	if size == 0 {
		return 0
	}
	return (sp.Total() + size - 1) / size
}

// ShardRange returns the half-open cell index range of shard i.
func (sp *Spec) ShardRange(i int) (start, end int) {
	size := sp.ShardSize()
	start = i * size
	end = start + size
	if total := sp.Total(); end > total {
		end = total
	}
	return start, end
}
