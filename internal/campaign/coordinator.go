package campaign

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/runcache"
)

// Options configures a coordinated campaign run.
type Options struct {
	// Dir is the campaign directory (created if missing).
	Dir string
	// Cache is the shared run cache all workers execute through.
	Cache *runcache.Cache
	// Workers is the number of worker OS processes to spawn via Spawn; with
	// zero workers (or a nil Spawn) the coordinator executes every shard
	// in-process.
	Workers int
	// Spawn builds the command for one worker process (the gscampaign
	// binary re-executing itself in -worker mode). The coordinator starts
	// and waits for them; a worker that exits non-zero (or is killed) is
	// logged, not fatal — the coordinator's in-process pass finishes
	// whatever the fleet left behind.
	Spawn func(ctx context.Context, worker int) *exec.Cmd
	// Resume allows initialising over an existing campaign directory: the
	// manifest is re-read, the cell list re-expanded, and only missing
	// shards execute. Without Resume, an already-initialised directory is
	// an error (refusing to silently append to unknown state).
	Resume bool
	// Lease and Poll forward to the in-process worker (see Worker).
	Lease time.Duration
	Poll  time.Duration
	// IgnoreClaims forwards to the in-process worker (test hook).
	IgnoreClaims bool
	// Log, when non-nil, receives coordinator progress lines.
	Log io.Writer
}

// Result is a completed campaign's outputs.
type Result struct {
	Manifest *Manifest
	Spec     *Spec
	// Snapshot is the merged campaign telemetry; Det its deterministic
	// serialisation (byte-identical across worker counts and crashes).
	Snapshot *obs.Snapshot
	Det      []byte
	// Paths of the merged artefacts written into the campaign directory.
	SnapPath, DetPath, RunlogPath string
	// ShardsRun counts shards executed by this process's in-process pass.
	ShardsRun int
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// Init prepares the campaign directory for spec: creates it, writes the
// manifest, or — on resume — verifies the existing manifest matches. A nil
// spec resumes whatever the directory already holds.
func Init(dir string, sp *Spec, resume bool) (*Manifest, *Spec, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("campaign: empty campaign directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("campaign: %w", err)
	}
	if _, err := os.Stat(manifestPath(dir)); err == nil {
		m, msp, err := ReadManifest(dir)
		if err != nil {
			return nil, nil, err
		}
		if sp != nil && sp.ID() != m.ID {
			return nil, nil, fmt.Errorf("campaign: directory %s holds campaign %s (%s), not %s (%s)",
				dir, m.Name, m.ID, sp.Name, sp.ID())
		}
		if !resume {
			return nil, nil, fmt.Errorf("campaign: directory %s already initialised (campaign %s); use -resume", dir, m.ID)
		}
		return m, msp, nil
	}
	if sp == nil {
		return nil, nil, fmt.Errorf("campaign: directory %s has no manifest to resume", dir)
	}
	// A directory with shard files but no manifest is partial unknown
	// state; refuse rather than adopt it.
	if stray, _ := filepath.Glob(filepath.Join(dir, "shard-*")); len(stray) > 0 {
		return nil, nil, fmt.Errorf("campaign: directory %s has %d shard files but no manifest", dir, len(stray))
	}
	m := NewManifest(sp)
	if err := WriteManifest(dir, m); err != nil {
		return nil, nil, err
	}
	return m, sp, nil
}

// Run coordinates a campaign end to end: initialise (or resume) the
// directory, spawn the worker fleet, finish any remaining shards
// in-process, and merge the per-shard telemetry in shard order. A nil spec
// resumes the directory's existing campaign.
func Run(ctx context.Context, sp *Spec, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, sp, err := Init(o.Dir, sp, o.Resume)
	if err != nil {
		return nil, err
	}
	_, done := Status(o.Dir, m)
	logf(o.Log, "campaign %s (%s): %d runs in %d shards, %d shards already done",
		m.Name, m.ID, m.Total, m.Shards, done)

	// The worker fleet. Child failures are logged, never fatal: shards they
	// abandoned are re-executed by whoever scans next (including the
	// in-process pass below), and shards they published stay published.
	if o.Workers > 0 && o.Spawn != nil {
		cmds := make([]*exec.Cmd, 0, o.Workers)
		for i := 0; i < o.Workers; i++ {
			cmd := o.Spawn(ctx, i)
			if cmd == nil {
				continue
			}
			if err := cmd.Start(); err != nil {
				logf(o.Log, "worker %d failed to start: %v", i, err)
				continue
			}
			cmds = append(cmds, cmd)
		}
		for i, cmd := range cmds {
			if err := cmd.Wait(); err != nil {
				logf(o.Log, "worker %d exited: %v", i, err)
			}
		}
	}

	// In-process pass: with Workers == 0 this is the whole execution;
	// otherwise it sweeps up anything the fleet left (crashed workers'
	// shards, or expired leases nobody re-claimed).
	w := &Worker{
		Dir: o.Dir, Manifest: m, Spec: sp, Cache: o.Cache,
		Owner: fmt.Sprintf("coord-%d", os.Getpid()),
		Lease: o.Lease, Poll: o.Poll, IgnoreClaims: o.IgnoreClaims, Log: o.Log,
	}
	ran, err := w.Run(ctx)
	if err != nil {
		return nil, err
	}

	res, err := Merge(o.Dir, m, sp)
	if err != nil {
		return nil, err
	}
	res.ShardsRun = ran
	return res, nil
}

// Merge folds every shard's published outputs into the campaign artefacts:
// the merged telemetry snapshot (shard snapshots merged in shard order —
// see obs.MergeSnapshots for why this is byte-deterministic), its
// deterministic serialisation, and the concatenated runlog in shard order.
// All shards must be done.
func Merge(dir string, m *Manifest, sp *Spec) (*Result, error) {
	if _, done := Status(dir, m); done != m.Shards {
		return nil, fmt.Errorf("campaign: %d of %d shards done; cannot merge", done, m.Shards)
	}
	snaps := make([]*obs.Snapshot, m.Shards)
	var runlog bytes.Buffer
	for i := 0; i < m.Shards; i++ {
		s, err := obs.ReadSnapshot(SnapPath(dir, i))
		if err != nil {
			return nil, fmt.Errorf("campaign: shard %d: %w", i, err)
		}
		snaps[i] = s
		data, err := os.ReadFile(RunlogPath(dir, i))
		if err != nil {
			return nil, fmt.Errorf("campaign: shard %d: %w", i, err)
		}
		runlog.Write(data)
	}
	merged, err := obs.MergeSnapshots(snaps)
	if err != nil {
		return nil, err
	}
	det, err := merged.DeterministicJSON()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Manifest: m, Spec: sp, Snapshot: merged, Det: det,
		SnapPath:   MergedSnapPath(dir),
		DetPath:    MergedDetPath(dir),
		RunlogPath: MergedRunlogPath(dir),
	}
	if err := obs.WriteSnapshot(res.SnapPath, merged); err != nil {
		return nil, err
	}
	if err := atomicWrite(res.DetPath, append(append([]byte(nil), det...), '\n')); err != nil {
		return nil, err
	}
	if err := atomicWrite(res.RunlogPath, runlog.Bytes()); err != nil {
		return nil, err
	}
	return res, nil
}
