package campaign

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// FuzzParseCampaign feeds the campaign spec parser arbitrary file contents.
// The parser must never panic, must be deterministic, and any spec it
// accepts must satisfy the structural contract the coordinator depends on:
// a positive bounded run count, a consistent sharding, a canonical text
// that re-parses to the same identity, and cells that compile into
// cacheable run configurations.
func FuzzParseCampaign(f *testing.F) {
	seeds := []string{
		gridSpecText,
		mcSpecText,
		tinySpecText,
		"[campaign]\nname = defaults\n",
		// Hostile shapes the parser must reject without panicking.
		"[campaign]\nmode = mc\ndraws = 1\n[mc]\nrate_mbps = NaN..10\nrtt_ms = 20\nqueue_mult = 2",
		"[campaign]\nmode = mc\ndraws = 1\n[mc]\nrate_mbps = 10..1e308:1\nrtt_ms = 20\nqueue_mult = 2",
		"[campaign]\nmode = mc\ndraws = 1\n[mc]\nrate_mbps = 10:-1\nrtt_ms = 20\nqueue_mult = 2",
		"[campaign]\nseed = 99999999999999999999999999",
		"[campaign]\nshards = 99999\n",
		"[grid]\ncapacities = " + strings.Repeat("1mbit,", 100),
		"[grid]\nqueue_mults = 1e309",
		"= value without key",
		"[campaign\nname = x",
		"\x00\x01\x02[campaign]",
		"[campaign]\n" + strings.Repeat("#pad\n", 50),
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := ParseSpec(strings.NewReader(text))
		if err != nil {
			if sp != nil {
				t.Fatalf("ParseSpec returned both a spec and an error: %v", err)
			}
			return
		}
		// Determinism: same bytes, same spec.
		sp2, err2 := ParseSpec(strings.NewReader(text))
		if err2 != nil || !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("re-parse diverged: %v", err2)
		}
		// Structural contract of an accepted spec.
		total := sp.Total()
		if total < 1 || total > maxCells {
			t.Fatalf("accepted spec with %d runs", total)
		}
		n := sp.ShardCount()
		if n < 1 || n > maxShards || n > total {
			t.Fatalf("accepted spec with %d shards over %d runs", n, total)
		}
		start, end := sp.ShardRange(n - 1)
		if start < 0 || end != total {
			t.Fatalf("last shard [%d,%d) does not end at %d", start, end, total)
		}
		// Canonical text is a parseable fixed point with a stable identity.
		canon := sp.Canonical()
		back, err := ParseSpec(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical text rejected: %v\n%s", err, canon)
		}
		if back.Canonical() != canon || back.ID() != sp.ID() {
			t.Fatalf("canonical text not a fixed point:\n%s", canon)
		}
		// Cells compile into finite, cacheable run configurations. Expansion
		// is bounded to keep the fuzz iteration cheap; cell 0 and the last
		// cell cover both ends of the index space.
		if total <= 4096 {
			cells := sp.Cells()
			if len(cells) != total {
				t.Fatalf("expanded %d cells, want %d", len(cells), total)
			}
			for _, c := range []Cell{cells[0], cells[len(cells)-1]} {
				cfg := c.RunConfig(sp)
				if cfg.Capacity <= 0 || math.IsNaN(cfg.QueueMult) || cfg.QueueMult <= 0 {
					t.Fatalf("cell %d compiles to bad condition %+v", c.Index, cfg.Condition)
				}
				if cfg.BaseRTT < 0 {
					t.Fatalf("cell %d negative RTT %v", c.Index, cfg.BaseRTT)
				}
				if _, ok := experiment.CacheKey(cfg); !ok {
					t.Fatalf("cell %d not cacheable", c.Index)
				}
			}
		}
	})
}
