package campaign

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Campaign modes.
const (
	ModeGrid = "grid" // full factorial over the [grid] axes
	ModeMC   = "mc"   // Monte-Carlo draws from the [mc] distributions
)

// Parser safety bounds. Campaign specs are small human-written files;
// anything past these limits is hostile or corrupt input and is rejected
// rather than amplified into memory or CPU (the fuzz harness leans on this).
const (
	maxSpecBytes = 1 << 20 // 1 MiB
	maxLineBytes = 4096
	maxAxis      = 64      // entries per grid axis
	maxDistSegs  = 256     // segments per distribution
	maxCells     = 2 << 20 // total runs per campaign
	maxShards    = 4096
)

// Spec is a parsed campaign file: everything that determines the campaign's
// cell list. Its canonical rendering (Canonical) is the campaign's identity
// — two specs with the same canonical text expand to the same cells, seeds
// included.
type Spec struct {
	// Name identifies the campaign; it feeds the campaign ID, so renaming a
	// spec yields a fresh campaign directory over the same (shared) cache.
	Name string
	// Seed derives every per-cell seed deterministically.
	Seed uint64
	// Mode is ModeGrid or ModeMC.
	Mode string
	// Iterations is the per-cell repeat count (grid mode).
	Iterations int
	// Draws is the Monte-Carlo sample count (mc mode).
	Draws int
	// Scale compresses the paper timeline (1.0 = the full 540 s trace).
	Scale float64
	// Shards is the number of work units the cells partition into.
	Shards int

	// Grid axes (grid mode).
	Systems    []gamestream.System
	CCAs       []string // "" means no competing flow (spelled "solo")
	Capacities []units.Rate
	QueueMults []float64
	AQM        string

	// Empirical distributions (mc mode): bottleneck rate in Mb/s, base RTT
	// in ms, and queue size in BDP multiples.
	Rate  *stats.Piecewise
	RTT   *stats.Piecewise
	Queue *stats.Piecewise
}

// ParseSpecFile parses a campaign file from disk, naming an unnamed
// campaign after the file.
func ParseSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sp, err := ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if sp.Name == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		sp.Name = strings.TrimSuffix(base, ".campaign")
		if err := checkName(sp.Name); err != nil {
			return nil, fmt.Errorf("%s: campaign name from filename: %v", path, err)
		}
	}
	return sp, nil
}

// ParseSpec reads a campaign spec. The format is line-oriented:
//
//	# comment (full-line or trailing)
//	[campaign]                — name, seed, mode, iterations, draws, scale, shards
//	[grid]                    — systems, ccas, capacities, queue_mults, aqm
//	[mc]                      — systems, ccas, rate_mbps, rtt_ms, queue_mult, aqm
//	key = value
//
// Distributions are comma-separated weighted segments: "10..50:3, 50..100:1"
// mixes a uniform [10,50] at weight 3 with a uniform [50,100] at weight 1;
// "0.5:1, 2:2, 7:1" is a discrete distribution over three point masses; a
// bare "25" is a constant. Unknown sections or keys, duplicates, and
// out-of-range values are errors — a spec either compiles exactly or not at
// all.
func ParseSpec(r io.Reader) (*Spec, error) {
	sp := &Spec{Mode: ModeGrid, Iterations: 15, Scale: 1}
	var (
		section string
		seenSec = map[string]bool{}
		seenKey = map[string]bool{}
		lineNo  int
		total   int
	)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256), maxLineBytes)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		total += len(line) + 1
		if total > maxSpecBytes {
			return nil, fmt.Errorf("line %d: spec exceeds %d bytes", lineNo, maxSpecBytes)
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: unterminated section header %q", lineNo, line)
			}
			name := strings.ToLower(strings.TrimSpace(line[1 : len(line)-1]))
			switch name {
			case "campaign", "grid", "mc":
			default:
				return nil, fmt.Errorf("line %d: unknown section [%s]", lineNo, name)
			}
			if seenSec[name] {
				return nil, fmt.Errorf("line %d: duplicate section [%s]", lineNo, name)
			}
			seenSec[name] = true
			section = name
			continue
		}

		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: want \"key = value\", got %q", lineNo, line)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if section == "" {
			return nil, fmt.Errorf("line %d: %q outside any section", lineNo, key)
		}
		id := section + "\x00" + key
		if seenKey[id] {
			return nil, fmt.Errorf("line %d: duplicate key %q in [%s]", lineNo, key, section)
		}
		seenKey[id] = true

		var err error
		switch section {
		case "campaign":
			err = sp.setCampaignKey(key, val)
		case "grid":
			err = sp.setGridKey(key, val)
		case "mc":
			err = sp.setMCKey(key, val)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: [%s] %s: %v", lineNo, section, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("line %d: line exceeds %d bytes", lineNo+1, maxLineBytes)
		}
		return nil, err
	}

	if seenSec["grid"] && sp.Mode != ModeGrid {
		return nil, fmt.Errorf("[grid] section in a %s-mode campaign", sp.Mode)
	}
	if seenSec["mc"] && sp.Mode != ModeMC {
		return nil, fmt.Errorf("[mc] section in a %s-mode campaign", sp.Mode)
	}
	if err := sp.validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *Spec) setCampaignKey(key, val string) error {
	switch key {
	case "name":
		if err := checkName(val); err != nil {
			return err
		}
		sp.Name = val
		return nil
	case "seed":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", val)
		}
		sp.Seed = v
		return nil
	case "mode":
		switch val {
		case ModeGrid, ModeMC:
			sp.Mode = val
			return nil
		}
		return fmt.Errorf("unknown mode %q (want grid or mc)", val)
	case "iterations":
		v, err := strconv.Atoi(val)
		if err != nil || v < 1 || v > maxCells {
			return fmt.Errorf("iterations %q outside [1,%d]", val, maxCells)
		}
		sp.Iterations = v
		return nil
	case "draws":
		v, err := strconv.Atoi(val)
		if err != nil || v < 1 || v > maxCells {
			return fmt.Errorf("draws %q outside [1,%d]", val, maxCells)
		}
		sp.Draws = v
		return nil
	case "scale":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 100 {
			return fmt.Errorf("scale %q outside (0,100]", val)
		}
		sp.Scale = v
		return nil
	case "shards":
		v, err := strconv.Atoi(val)
		if err != nil || v < 1 || v > maxShards {
			return fmt.Errorf("shards %q outside [1,%d]", val, maxShards)
		}
		sp.Shards = v
		return nil
	}
	return fmt.Errorf("unknown key %q", key)
}

func (sp *Spec) setGridKey(key, val string) error {
	switch key {
	case "systems":
		return sp.parseSystems(val)
	case "ccas":
		return sp.parseCCAs(val)
	case "capacities":
		for _, s := range splitList(val) {
			r, err := experiment.ParseRate(s)
			if err != nil {
				return err
			}
			if r <= 0 {
				return fmt.Errorf("capacity %q must be positive", s)
			}
			if len(sp.Capacities) >= maxAxis {
				return fmt.Errorf("more than %d capacities", maxAxis)
			}
			sp.Capacities = append(sp.Capacities, r)
		}
		return nil
	case "queue_mults":
		for _, s := range splitList(val) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 1000 {
				return fmt.Errorf("queue_mult %q outside (0,1000]", s)
			}
			if len(sp.QueueMults) >= maxAxis {
				return fmt.Errorf("more than %d queue_mults", maxAxis)
			}
			sp.QueueMults = append(sp.QueueMults, v)
		}
		return nil
	case "aqm":
		return sp.setAQM(val)
	}
	return fmt.Errorf("unknown key %q", key)
}

func (sp *Spec) setMCKey(key, val string) error {
	switch key {
	case "systems":
		return sp.parseSystems(val)
	case "ccas":
		return sp.parseCCAs(val)
	case "rate_mbps":
		p, err := parseDist(val, 0.1, 10000)
		if err != nil {
			return err
		}
		sp.Rate = p
		return nil
	case "rtt_ms":
		p, err := parseDist(val, 0.1, 10000)
		if err != nil {
			return err
		}
		sp.RTT = p
		return nil
	case "queue_mult":
		p, err := parseDist(val, 0.01, 1000)
		if err != nil {
			return err
		}
		sp.Queue = p
		return nil
	case "aqm":
		return sp.setAQM(val)
	}
	return fmt.Errorf("unknown key %q", key)
}

func (sp *Spec) setAQM(val string) error {
	switch val {
	case experiment.AQMDropTail, experiment.AQMCoDel, experiment.AQMFQCoDel:
		sp.AQM = val
		return nil
	}
	return fmt.Errorf("unknown aqm %q", val)
}

func (sp *Spec) parseSystems(val string) error {
	for _, s := range splitList(val) {
		var found gamestream.System
		for _, sys := range gamestream.Systems {
			if string(sys) == s {
				found = sys
				break
			}
		}
		if found == "" {
			return fmt.Errorf("unknown system %q (want stadia, geforce, or luna)", s)
		}
		if len(sp.Systems) >= maxAxis {
			return fmt.Errorf("more than %d systems", maxAxis)
		}
		sp.Systems = append(sp.Systems, found)
	}
	return nil
}

func (sp *Spec) parseCCAs(val string) error {
	for _, s := range splitList(val) {
		cca := s
		if s == "solo" {
			cca = "" // no competing flow
		} else if !validCCA(s) {
			return fmt.Errorf("unknown cca %q", s)
		}
		if len(sp.CCAs) >= maxAxis {
			return fmt.Errorf("more than %d ccas", maxAxis)
		}
		sp.CCAs = append(sp.CCAs, cca)
	}
	return nil
}

// validCCA accepts the congestion controllers tcp.New knows.
func validCCA(name string) bool {
	switch name {
	case tcp.AlgCubic, tcp.AlgBBR, tcp.AlgBBR2, tcp.AlgReno, tcp.AlgVegas, tcp.AlgLEDBAT:
		return true
	}
	return false
}

// checkName bounds campaign names to short identifier-like tokens.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("missing")
	}
	if len(name) > 64 {
		return fmt.Errorf("%q longer than 64 bytes", name)
	}
	for _, r := range name {
		if !(r == '-' || r == '_' || r == '.' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')) {
			return fmt.Errorf("%q contains %q (want letters, digits, -_.)", name, r)
		}
	}
	return nil
}

func splitList(val string) []string {
	var out []string
	for _, s := range strings.Split(val, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// parseDist parses a weighted-segment distribution: "lo..hi:w" is a uniform
// segment, "v:w" a point mass, weights default to 1. Bounds must fall in
// [lo, hi] and be finite; weights must be positive and finite.
func parseDist(val string, lo, hi float64) (*stats.Piecewise, error) {
	var segs []stats.Segment
	for _, part := range splitList(val) {
		if len(segs) >= maxDistSegs {
			return nil, fmt.Errorf("more than %d segments", maxDistSegs)
		}
		w := 1.0
		if i := strings.LastIndexByte(part, ':'); i >= 0 {
			v, err := strconv.ParseFloat(strings.TrimSpace(part[i+1:]), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
			w = v
			part = strings.TrimSpace(part[:i])
		}
		var a, b float64
		if s1, s2, ok := strings.Cut(part, ".."); ok {
			v1, err1 := strconv.ParseFloat(strings.TrimSpace(s1), 64)
			v2, err2 := strconv.ParseFloat(strings.TrimSpace(s2), 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad segment %q (want lo..hi)", part)
			}
			a, b = v1, v2
		} else {
			v, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q", part)
			}
			a, b = v, v
		}
		if math.IsNaN(a) || math.IsNaN(b) || a > b || a < lo || b > hi {
			return nil, fmt.Errorf("segment %q outside [%g,%g]", part, lo, hi)
		}
		segs = append(segs, stats.Segment{Lo: a, Hi: b, W: w})
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("empty distribution")
	}
	return stats.NewPiecewise(segs)
}

// validate cross-checks the assembled spec and fills mode defaults.
func (sp *Spec) validate() error {
	if sp.Name == "" {
		// ParseSpecFile fills from the filename; direct Parse callers must
		// name the campaign (the name feeds the campaign ID).
		sp.Name = "campaign"
	}
	if len(sp.Systems) == 0 {
		sp.Systems = append([]gamestream.System(nil), gamestream.Systems...)
	}
	if len(sp.CCAs) == 0 {
		sp.CCAs = []string{"cubic", "bbr"}
	}
	switch sp.Mode {
	case ModeGrid:
		if len(sp.Capacities) == 0 {
			sp.Capacities = []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)}
		}
		if len(sp.QueueMults) == 0 {
			sp.QueueMults = []float64{0.5, 2, 7}
		}
	case ModeMC:
		if sp.Draws == 0 {
			return fmt.Errorf("mc mode needs [campaign] draws")
		}
		if sp.Rate == nil || sp.RTT == nil || sp.Queue == nil {
			return fmt.Errorf("mc mode needs [mc] rate_mbps, rtt_ms, and queue_mult distributions")
		}
	}
	total, err := sp.totalChecked()
	if err != nil {
		return err
	}
	if sp.Shards == 0 {
		sp.Shards = 16
	}
	if sp.Shards > total {
		sp.Shards = total
	}
	return nil
}

// totalChecked computes the campaign's run count, guarding the grid product
// against overflow.
func (sp *Spec) totalChecked() (int, error) {
	if sp.Mode == ModeMC {
		return sp.Draws, nil
	}
	total := 1
	for _, n := range []int{sp.Iterations, len(sp.Systems), len(sp.CCAs), len(sp.Capacities), len(sp.QueueMults)} {
		if n == 0 {
			return 0, fmt.Errorf("empty grid axis")
		}
		if total > maxCells/n {
			return 0, fmt.Errorf("grid larger than %d runs", maxCells)
		}
		total *= n
	}
	return total, nil
}

// Total is the campaign's run count.
func (sp *Spec) Total() int {
	n, _ := sp.totalChecked()
	return n
}

// Canonical renders the spec as normalised campaign-file text: fixed key
// order, no comments, one canonical float formatting. Parsing the canonical
// text reproduces the Spec, and its SHA-256 is the campaign ID — so the
// manifest can embed the text and every worker re-derives the identical
// cell list from it.
func (sp *Spec) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[campaign]\nname = %s\nseed = %d\nmode = %s\n", sp.Name, sp.Seed, sp.Mode)
	if sp.Mode == ModeGrid {
		fmt.Fprintf(&b, "iterations = %d\n", sp.Iterations)
	} else {
		fmt.Fprintf(&b, "draws = %d\n", sp.Draws)
	}
	fmt.Fprintf(&b, "scale = %g\nshards = %d\n", sp.Scale, sp.Shards)

	section := "[grid]"
	if sp.Mode == ModeMC {
		section = "[mc]"
	}
	fmt.Fprintf(&b, "\n%s\n", section)
	var names []string
	for _, s := range sp.Systems {
		names = append(names, string(s))
	}
	fmt.Fprintf(&b, "systems = %s\n", strings.Join(names, ","))
	names = names[:0]
	for _, c := range sp.CCAs {
		if c == "" {
			c = "solo"
		}
		names = append(names, c)
	}
	fmt.Fprintf(&b, "ccas = %s\n", strings.Join(names, ","))
	if sp.Mode == ModeGrid {
		names = names[:0]
		for _, c := range sp.Capacities {
			names = append(names, fmt.Sprintf("%gmbit", c.Mbit()))
		}
		fmt.Fprintf(&b, "capacities = %s\n", strings.Join(names, ","))
		names = names[:0]
		for _, q := range sp.QueueMults {
			names = append(names, fmt.Sprintf("%g", q))
		}
		fmt.Fprintf(&b, "queue_mults = %s\n", strings.Join(names, ","))
	} else {
		fmt.Fprintf(&b, "rate_mbps = %s\n", renderDist(sp.Rate))
		fmt.Fprintf(&b, "rtt_ms = %s\n", renderDist(sp.RTT))
		fmt.Fprintf(&b, "queue_mult = %s\n", renderDist(sp.Queue))
	}
	if sp.AQM != "" {
		fmt.Fprintf(&b, "aqm = %s\n", sp.AQM)
	}
	return b.String()
}

func renderDist(p *stats.Piecewise) string {
	var parts []string
	for _, s := range p.Segments() {
		if s.Lo == s.Hi {
			parts = append(parts, fmt.Sprintf("%g:%g", s.Lo, s.W))
		} else {
			parts = append(parts, fmt.Sprintf("%g..%g:%g", s.Lo, s.Hi, s.W))
		}
	}
	return strings.Join(parts, ",")
}

// ID returns the campaign's content identity: the SHA-256 of the canonical
// spec text, truncated to 16 hex digits. Any change that could alter the
// cell list changes the ID, so a campaign directory can never mix shards
// from two different expansions.
func (sp *Spec) ID() string {
	sum := sha256.Sum256([]byte(sp.Canonical()))
	return hex.EncodeToString(sum[:8])
}
