#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md's measured sections from a gsbench -exp all
capture (results_full.txt). Keeps the hand-written framing and deviation
notes; swaps in the rendered tables. Usage:

    python3 tools/fill_experiments.py results_full.txt EXPERIMENTS.md
"""
import re
import sys


def sections(text):
    """Split the gsbench output into titled blocks."""
    blocks = {}
    cur_title, cur = None, []
    for line in text.splitlines():
        if (line.startswith(("Table 1:", "Table 3:", "Table 4:", "Table 5:",
                             "Loss rate", "Figure 4:", "Response and recovery",
                             "vs TCP cubic:"))
                or line.startswith("Figure 3:")
                or line.startswith("## Figure 2 panel")):
            if cur_title:
                blocks.setdefault(cur_title, []).append("\n".join(cur).rstrip())
            cur_title = line.split(",")[0].split(" panel")[0]
            cur = [line]
        elif cur_title:
            cur.append(line)
    if cur_title:
        blocks.setdefault(cur_title, []).append("\n".join(cur).rstrip())
    return blocks


def figure2_summary(text):
    """Reduce Figure 2 CSV panels to pre/during/post means per queue size."""
    out = []
    panels = re.findall(r"## Figure 2 panel: (\S+) \(25 Mb/s\)\n(.*?)(?=\n## |\nFigure 3|\Z)",
                        text, re.S)
    for name, csv in panels:
        rows = [l.split(",") for l in csv.strip().splitlines()[1:] if l]
        if not rows:
            continue
        # Columns: t, q0.5 mean, q0.5 ci, q2 mean, q2 ci, q7 mean, q7 ci
        def mean(col, lo, hi):
            vals = [float(r[col]) for r in rows
                    if r[col] and lo <= float(r[0]) < hi]
            return sum(vals) / len(vals) if vals else 0.0
        segs = []
        for qi, qname in ((1, "0.5x"), (3, "2x"), (5, "7x")):
            if qi >= len(rows[0]):
                continue
            segs.append("q%s pre %.1f / during %.1f / post %.1f" % (
                qname, mean(qi, 125, 185), mean(qi, 222, 370), mean(qi, 420, 540)))
        out.append("* `%s`: %s" % (name, "; ".join(segs)))
    return "\n".join(out)


def main():
    results = open(sys.argv[1]).read()
    blocks = sections(results)

    def block(prefix, joiner="\n\n"):
        items = []
        for title, lst in blocks.items():
            if title.startswith(prefix):
                items.extend(lst)
        return joiner.join(items)

    fenced = lambda s: "```\n" + s.strip() + "\n```"

    doc = open(sys.argv[2]).read()

    def fill(heading, body):
        nonlocal doc
        pat = re.compile(r"(## %s\n\n)(.*?)(?=\n## |\Z)" % re.escape(heading), re.S)
        doc = pat.sub(lambda m: m.group(1) + body + "\n", doc)

    if block("Table 1"):
        fill("Table 1 — baseline bitrates (unconstrained, no competing flow)",
             fenced(block("Table 1")) +
             "\n\nMeans land within 2% of the paper; the per-bin variation "
             "ordering (Stadia most variable, Luna least) is preserved.")
    f2 = figure2_summary(results)
    if f2:
        fill("Figure 2 — bitrate versus time (25 Mb/s)",
             "Across-run mean bitrates (Mb/s) from the panel CSVs, by window "
             "(pre 125-185 s, during 222-370 s, post 420-540 s):\n\n" + f2 +
             "\n\nAs in the paper: all systems run near the cap before the "
             "flow arrives, drop on arrival, and recover after departure; "
             "GeForce's contended level sits well below the 12.5 Mb/s fair "
             "share at every queue size, while Stadia and Luna's depend on "
             "queue size against Cubic and collapse against BBR at small "
             "queues. Full series with 95% CIs: `gsbench -exp figure2`.")
    if block("Figure 3"):
        fill("Figure 3 — fairness heatmaps", fenced(block("Figure 3")))
    if block("Figure 4"):
        f4 = block("Figure 4") + "\n\n" + block("vs TCP cubic:")
        fill("Figure 4 — adaptiveness versus fairness", fenced(f4))
    if block("Table 3"):
        fill("Table 3 — RTT without a competing flow", fenced(block("Table 3")))
    if block("Table 4"):
        fill("Table 4 — RTT with a competing flow", fenced(block("Table 4")))
    if block("Table 5"):
        fill("Table 5 — frame rates with a competing flow", fenced(block("Table 5")))
    if block("Loss rate"):
        fill("Loss rates", fenced(block("Loss rate")))
    if block("Response and recovery"):
        fill("Response and recovery breakdown", fenced(block("Response and recovery")))

    open(sys.argv[2], "w").write(doc)
    print("filled", sys.argv[2])


if __name__ == "__main__":
    main()
